"""Gnutella v0.6 two-tier (ultrapeer/leaf) topology generator.

The modern Gnutella overlay separates well-connected *ultrapeers* from
low-capacity *leaves*: ultrapeers form a dense top-level mesh and each leaf
attaches to a few ultrapeers, which shield it from routing traffic.  The
parameters below follow the measurement studies the paper cites (Stutzbach
et al.; Rasti et al.) and the paper's own 2006 crawls:

* roughly 15% of nodes are ultrapeers;
* ultrapeers hold ~30 connections to other ultrapeers (they "try to
  maintain a fixed number of connections", which is why the v0.6 overlay is
  *not* a true power law);
* leaves hold ~3 ultrapeer connections.

The ultrapeer mesh is built with the pairing model plus deletion of bad
edges; because the target degree is far below the mesh size, the deleted
fraction is negligible and the realized degree stays tightly concentrated
around the target — exactly the "fixed number of connections" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netmodel.base import NetworkModel
from repro.topology._latency import edge_latencies
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_fraction


@dataclass(frozen=True)
class TwoTierTopology:
    """A two-tier overlay: the graph plus the ultrapeer role assignment."""

    graph: OverlayGraph
    is_ultrapeer: np.ndarray  # bool mask over node ids

    def __post_init__(self):
        if self.is_ultrapeer.shape != (self.graph.n_nodes,):
            raise ValueError("is_ultrapeer mask must have one entry per node")
        object.__setattr__(
            self, "is_ultrapeer", np.ascontiguousarray(self.is_ultrapeer, dtype=bool)
        )

    @property
    def ultrapeers(self) -> np.ndarray:
        """Node ids of ultrapeers."""
        return np.flatnonzero(self.is_ultrapeer)

    @property
    def leaves(self) -> np.ndarray:
        """Node ids of leaves."""
        return np.flatnonzero(~self.is_ultrapeer)

    def leaf_parents(self, leaf: int) -> np.ndarray:
        """Ultrapeer neighbors of a leaf."""
        nbrs = self.graph.neighbors(leaf)
        return nbrs[self.is_ultrapeer[nbrs]]


def two_tier_graph(
    n_nodes: int,
    ultrapeer_fraction: float = 0.15,
    up_degree: int = 30,
    leaf_degree: int = 3,
    leaf_degree_range: Optional[tuple[int, int]] = None,
    model: Optional[NetworkModel] = None,
    seed: SeedLike = None,
) -> TwoTierTopology:
    """Generate a Gnutella-v0.6-style two-tier overlay.

    Parameters
    ----------
    n_nodes:
        Total nodes (ultrapeers + leaves).
    ultrapeer_fraction:
        Fraction of nodes promoted to ultrapeer.
    up_degree:
        Target ultrapeer-to-ultrapeer degree.
    leaf_degree:
        Number of ultrapeers each leaf attaches to (the modern-client
        default of 3).
    leaf_degree_range:
        Optional inclusive ``(lo, hi)``; each leaf's attachment count is
        drawn uniformly from it, overriding ``leaf_degree``.  Measured
        2006-era overlays mixed old single-connection clients with modern
        three-connection ones, which is what drives the low algebraic
        connectivity the paper reports for v0.6.
    """
    check_fraction("ultrapeer_fraction", ultrapeer_fraction)
    if leaf_degree < 1:
        raise ValueError(f"leaf_degree must be >= 1, got {leaf_degree}")
    if leaf_degree_range is not None:
        lo, hi = leaf_degree_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid leaf_degree_range {leaf_degree_range}")
    if up_degree < 1:
        raise ValueError(f"up_degree must be >= 1, got {up_degree}")
    rng = as_generator(seed)

    n_up = max(2, int(round(n_nodes * ultrapeer_fraction)))
    if n_up > n_nodes:
        raise ValueError(
            f"ultrapeer_fraction {ultrapeer_fraction} yields {n_up} ultrapeers "
            f"for only {n_nodes} nodes"
        )
    is_up = np.zeros(n_nodes, dtype=bool)
    up_ids = rng.choice(n_nodes, size=n_up, replace=False)
    is_up[up_ids] = True
    leaves = np.flatnonzero(~is_up)

    # --- ultrapeer mesh: pairing model at the target degree, bad edges
    # deleted, stray components stitched to keep the mesh connected.
    k = min(up_degree, n_up - 1)
    stubs = np.repeat(up_ids.astype(np.int64), k)
    rng.shuffle(stubs)
    if stubs.size % 2:
        stubs = stubs[:-1]
    mu, mv = stubs[0::2], stubs[1::2]
    keep = mu != mv
    mu, mv = mu[keep], mv[keep]
    lo = np.minimum(mu, mv)
    hi = np.maximum(mu, mv)
    key = lo * np.int64(n_nodes) + hi
    _, first = np.unique(key, return_index=True)
    mu, mv = lo[first], hi[first]
    mu, mv = _stitch_mesh(n_nodes, up_ids, mu, mv, rng)

    # --- leaf attachments: each leaf picks distinct ultrapeers.
    if leaf_degree_range is None:
        lu, lv = _attach_leaves(leaves, min(leaf_degree, n_up), up_ids, rng)
    else:
        lo, hi = leaf_degree_range
        per_leaf = rng.integers(lo, min(hi, n_up) + 1, size=leaves.size)
        parts = [
            _attach_leaves(leaves[per_leaf == d], int(d), up_ids, rng)
            for d in np.unique(per_leaf)
        ]
        lu = np.concatenate([p[0] for p in parts])
        lv = np.concatenate([p[1] for p in parts])

    u = np.concatenate([mu, lu])
    v = np.concatenate([mv, lv])
    lat = edge_latencies(model, u, v)
    graph = OverlayGraph.from_edges(n_nodes, u, v, lat)
    return TwoTierTopology(graph=graph, is_ultrapeer=is_up)


def _attach_leaves(
    leaves: np.ndarray, ld: int, up_ids: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Edges attaching each leaf to ``ld`` distinct ultrapeers.

    Sampled vectorized with rejection on within-row duplicates (rare for
    ``ld`` << number of ultrapeers), instead of one rng.choice per leaf.
    """
    if leaves.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    n_up = up_ids.size
    picks = up_ids[rng.integers(0, n_up, size=(leaves.size, ld))]
    if ld > 1:
        for _ in range(64):
            srt = np.sort(picks, axis=1)
            bad_rows = np.flatnonzero((srt[:, 1:] == srt[:, :-1]).any(axis=1))
            if bad_rows.size == 0:
                break
            picks[bad_rows] = up_ids[rng.integers(0, n_up, size=(bad_rows.size, ld))]
        else:  # pragma: no cover - only reachable for pathological n_up ~ ld
            for row in range(leaves.size):
                if np.unique(picks[row]).size < ld:
                    picks[row] = rng.choice(up_ids, size=ld, replace=False)
    lu = np.repeat(leaves.astype(np.int64), ld)
    lv = picks.reshape(-1).astype(np.int64)
    return lu, lv


def _stitch_mesh(
    n_nodes: int,
    up_ids: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Connect stray ultrapeer-mesh components to the giant mesh component."""
    import scipy.sparse as sp
    import scipy.sparse.csgraph as csgraph

    adj = sp.csr_matrix((np.ones(u.size), (u, v)), shape=(n_nodes, n_nodes))
    n_comp, labels = csgraph.connected_components(adj, directed=False)
    up_labels = labels[up_ids]
    counts = np.bincount(up_labels, minlength=n_comp)
    giant = int(counts.argmax())
    if np.all(up_labels == giant):
        return u, v
    giant_ups = up_ids[up_labels == giant]
    extra_u, extra_v = [], []
    for comp in np.unique(up_labels):
        if comp == giant:
            continue
        members = up_ids[up_labels == comp]
        extra_u.append(int(rng.choice(members)))
        extra_v.append(int(rng.choice(giant_ups)))
    u = np.concatenate([u, np.asarray(extra_u, dtype=np.int64)])
    v = np.concatenate([v, np.asarray(extra_v, dtype=np.int64)])
    return u, v
