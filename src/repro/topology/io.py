"""Overlay persistence: save/load graphs as compressed ``.npz``.

A 100,000-node Makalu build takes minutes; analysis and search on it take
milliseconds.  Persisting overlays lets experiments re-run without paying
construction again, and lets users ship reproducible topology artifacts.
The format stores the exact CSR arrays, so a loaded graph is
bit-identical to the saved one.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.topology.graph import OverlayGraph
from repro.topology.twotier import TwoTierTopology

_FORMAT_VERSION = 1


def save_graph(
    path: str, graph: OverlayGraph, is_ultrapeer: Optional[np.ndarray] = None
) -> str:
    """Write an overlay (optionally with ultrapeer roles) to ``path``.

    Returns the written path (``.npz`` is appended if missing — numpy's
    convention).  Parent directories are created.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    arrays = {
        "format_version": np.asarray([_FORMAT_VERSION]),
        "indptr": graph.indptr,
        "indices": graph.indices,
        "latency": graph.latency,
    }
    if is_ultrapeer is not None:
        if is_ultrapeer.shape != (graph.n_nodes,):
            raise ValueError("is_ultrapeer mask must have one entry per node")
        arrays["is_ultrapeer"] = np.asarray(is_ultrapeer, dtype=bool)
    np.savez_compressed(path, **arrays)
    return path if path.endswith(".npz") else path + ".npz"


def load_graph(path: str) -> OverlayGraph:
    """Load an overlay saved by :func:`save_graph`."""
    with np.load(path) as data:
        _check_version(data, path)
        graph = OverlayGraph(
            data["indptr"].copy(), data["indices"].copy(), data["latency"].copy()
        )
    return graph


def save_two_tier(path: str, topo: TwoTierTopology) -> str:
    """Persist a two-tier overlay with its ultrapeer assignment."""
    return save_graph(path, topo.graph, is_ultrapeer=topo.is_ultrapeer)


def load_two_tier(path: str) -> TwoTierTopology:
    """Load a two-tier overlay saved by :func:`save_two_tier`."""
    with np.load(path) as data:
        _check_version(data, path)
        if "is_ultrapeer" not in data:
            raise ValueError(f"{path} has no ultrapeer roles; use load_graph")
        graph = OverlayGraph(
            data["indptr"].copy(), data["indices"].copy(), data["latency"].copy()
        )
        mask = data["is_ultrapeer"].copy()
    return TwoTierTopology(graph=graph, is_ultrapeer=mask)


def _check_version(data, path: str) -> None:
    if "format_version" not in data:
        raise ValueError(f"{path} is not a saved overlay")
    version = int(data["format_version"][0])
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path} uses overlay format v{version}; this build reads "
            f"v{_FORMAT_VERSION}"
        )
