"""Shared helper: assign physical latencies to generated overlay edges."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netmodel.base import NetworkModel


def edge_latencies(
    model: Optional[NetworkModel], u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Latency of each edge under ``model``; unit latencies if model is None."""
    u = np.asarray(u, dtype=np.int64)
    if model is None:
        return np.ones(u.size, dtype=np.float64)
    return model.pair_latency(u, np.asarray(v, dtype=np.int64))
