"""Overlay graph structures.

Two representations, matching their uses:

* :class:`AdjacencyBuilder` — a mutable dict-of-dicts adjacency used while
  an overlay is being *constructed* (Makalu's accept/prune loop, generator
  repair passes).  Operations are O(1) per edge.
* :class:`OverlayGraph` — a frozen CSR (compressed sparse row) snapshot used
  by every *analysis and search kernel*.  Neighbor lists are contiguous
  sorted slices of one ``indices`` array, so flood frontiers, Bloom-filter
  aggregation and spectral work are all plain vectorized gathers.

Graphs are simple (no self loops, no parallel edges) and undirected; each
edge is stored in both directions with its physical latency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.util.segments import segment_counts
from repro.util.validation import check_node_id


class OverlayGraph:
    """Frozen CSR overlay graph with per-edge latencies.

    Attributes
    ----------
    indptr:
        ``(n_nodes + 1,)`` int64; node ``u``'s neighbors occupy
        ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        ``(2 * n_edges,)`` int64 neighbor ids, sorted within each slice.
    latency:
        ``(2 * n_edges,)`` float64 edge latencies aligned with ``indices``.
    """

    __slots__ = ("_indptr", "_indices", "_latency", "_n_nodes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, latency: np.ndarray):
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._latency = np.ascontiguousarray(latency, dtype=np.float64)
        self._n_nodes = self._indptr.size - 1
        for arr in (self._indptr, self._indices, self._latency):
            arr.flags.writeable = False
        if self._indices.shape != self._latency.shape:
            raise ValueError("indices and latency must be aligned")
        if self._indptr[0] != 0 or self._indptr[-1] != self._indices.size:
            raise ValueError("indptr does not span the indices array")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        latencies: Optional[np.ndarray] = None,
    ) -> "OverlayGraph":
        """Build from an undirected edge list (each edge listed once).

        Duplicate edges and self loops are rejected rather than silently
        merged — generators are expected to produce simple graphs.
        """
        u = np.asarray(edges_u, dtype=np.int64)
        v = np.asarray(edges_v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("edges_u and edges_v must be 1-D and equal length")
        if u.size:
            if min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n_nodes:
                raise ValueError("edge endpoints out of range")
            if np.any(u == v):
                raise ValueError("self loops are not allowed")
        if latencies is None:
            lat = np.ones(u.size, dtype=np.float64)
        else:
            lat = np.asarray(latencies, dtype=np.float64)
            if lat.shape != u.shape:
                raise ValueError("latencies must align with the edge list")
            if np.any(lat < 0):
                raise ValueError("latencies must be non-negative")

        # Symmetrize, then sort by (source, target).
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        w = np.concatenate([lat, lat])
        order = np.lexsort((dst, src))
        src, dst, w = src[order], dst[order], w[order]
        if src.size > 1:
            dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
            if np.any(dup):
                raise ValueError("duplicate edges in the edge list")
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, w)

    @classmethod
    def from_adjacency(
        cls, n_nodes: int, adjacency: Mapping[int, Mapping[int, float]]
    ) -> "OverlayGraph":
        """Build from a dict-of-dicts ``{u: {v: latency}}`` adjacency."""
        us, vs, ws = [], [], []
        for a, nbrs in adjacency.items():
            for b, w in nbrs.items():
                if a == b:
                    raise ValueError(f"self loop at node {a}")
                if b not in adjacency or a not in adjacency[b]:
                    raise ValueError(f"asymmetric adjacency at edge ({a}, {b})")
                if a < b:  # each undirected edge once
                    us.append(a)
                    vs.append(b)
                    ws.append(w)
        return cls.from_edges(
            n_nodes,
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ws, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes (including isolated ones)."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR offsets (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR neighbor ids (read-only)."""
        return self._indices

    @property
    def latency(self) -> np.ndarray:
        """CSR edge latencies (read-only)."""
        return self._latency

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return segment_counts(self._indptr)

    @property
    def mean_degree(self) -> float:
        """Average node degree."""
        return 2.0 * self.n_edges / self._n_nodes if self._n_nodes else 0.0

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor ids of ``u`` (zero-copy view)."""
        check_node_id("u", u, self._n_nodes)
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def neighbor_latencies(self, u: int) -> np.ndarray:
        """Latencies to ``u``'s neighbors, aligned with :meth:`neighbors`."""
        check_node_id("u", u, self._n_nodes)
        return self._latency[self._indptr[u] : self._indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``(u, v)`` is an edge."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edge_latency(self, u: int, v: int) -> float:
        """Latency of edge ``(u, v)``; raises if absent."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        if i >= nbrs.size or nbrs[i] != v:
            raise KeyError(f"no edge ({u}, {v})")
        return float(self._latency[self._indptr[u] + i])

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, latency)`` with u < v."""
        for u in range(self._n_nodes):
            start, end = self._indptr[u], self._indptr[u + 1]
            for i in range(start, end):
                v = int(self._indices[i])
                if u < v:
                    yield u, v, float(self._latency[i])

    # ------------------------------------------------------------------
    # Conversions and derived graphs
    # ------------------------------------------------------------------

    def to_scipy(self, weighted: bool = False) -> sp.csr_matrix:
        """scipy CSR matrix; entries are latencies if ``weighted`` else 1."""
        data = self._latency if weighted else np.ones_like(self._latency)
        return sp.csr_matrix(
            (data, self._indices.copy(), self._indptr.copy()),
            shape=(self._n_nodes, self._n_nodes),
        )

    def to_adjacency(self) -> Dict[int, Dict[int, float]]:
        """Mutable dict-of-dicts copy (for handing to a builder)."""
        adj: Dict[int, Dict[int, float]] = {u: {} for u in range(self._n_nodes)}
        for u in range(self._n_nodes):
            start, end = self._indptr[u], self._indptr[u + 1]
            adj[u] = dict(
                zip(self._indices[start:end].tolist(), self._latency[start:end].tolist())
            )
        return adj

    def subgraph(self, keep: np.ndarray) -> Tuple["OverlayGraph", np.ndarray]:
        """Induced subgraph on the kept nodes.

        Parameters
        ----------
        keep:
            Either a boolean mask of length ``n_nodes`` or an array of node
            ids to keep.

        Returns
        -------
        (graph, old_ids):
            The relabeled subgraph, plus ``old_ids[new_id] -> old id``.
        """
        keep = np.asarray(keep)
        if keep.dtype == bool:
            if keep.size != self._n_nodes:
                raise ValueError("boolean mask length must equal n_nodes")
            mask = keep
        else:
            mask = np.zeros(self._n_nodes, dtype=bool)
            mask[keep] = True
        old_ids = np.flatnonzero(mask)
        new_id = -np.ones(self._n_nodes, dtype=np.int64)
        new_id[old_ids] = np.arange(old_ids.size)

        # Keep a directed entry when both endpoints survive.
        src = np.repeat(np.arange(self._n_nodes), segment_counts(self._indptr))
        keep_entry = mask[src] & mask[self._indices]
        src = new_id[src[keep_entry]]
        dst = new_id[self._indices[keep_entry]]
        lat = self._latency[keep_entry]
        half = src < dst
        sub = OverlayGraph.from_edges(old_ids.size, src[half], dst[half], lat[half])
        return sub, old_ids

    def remove_nodes(self, nodes: Iterable[int]) -> Tuple["OverlayGraph", np.ndarray]:
        """Subgraph with the given nodes (and their edges) deleted."""
        mask = np.ones(self._n_nodes, dtype=bool)
        nodes = np.asarray(list(nodes), dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._n_nodes):
            raise ValueError("node ids out of range")
        mask[nodes] = False
        return self.subgraph(mask)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def connected_components(self) -> Tuple[int, np.ndarray]:
        """Number of components and per-node component labels."""
        n, labels = csgraph.connected_components(self.to_scipy(), directed=False)
        return int(n), labels

    def is_connected(self) -> bool:
        """True if the graph has exactly one connected component."""
        return self.connected_components()[0] == 1

    def giant_component(self) -> Tuple["OverlayGraph", np.ndarray]:
        """Induced subgraph on the largest connected component."""
        _, labels = self.connected_components()
        biggest = np.bincount(labels).argmax()
        return self.subgraph(labels == biggest)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for u in range(self._n_nodes):
            nbrs = self.neighbors(u)
            if nbrs.size and np.any(np.diff(nbrs) <= 0):
                raise ValueError(f"neighbor list of {u} not strictly sorted")
            if np.any(nbrs == u):
                raise ValueError(f"self loop at {u}")
        # Symmetry: the reversed edge multiset must match.
        src = np.repeat(np.arange(self._n_nodes), segment_counts(self._indptr))
        fwd = np.lexsort((self._indices, src))
        rev = np.lexsort((src, self._indices))
        if not (
            np.array_equal(src[fwd], self._indices[rev])
            and np.array_equal(self._indices[fwd], src[rev])
            and np.allclose(self._latency[fwd], self._latency[rev])
        ):
            raise ValueError("graph is not symmetric")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OverlayGraph(n_nodes={self._n_nodes}, n_edges={self.n_edges}, "
            f"mean_degree={self.mean_degree:.2f})"
        )


class AdjacencyBuilder:
    """Mutable adjacency used while constructing overlays.

    Maintains the undirected-simple-graph invariant on every mutation; call
    :meth:`freeze` to snapshot into an :class:`OverlayGraph` for analysis.
    """

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n_nodes = n_nodes
        self._adj: list[Dict[int, float]] = [dict() for _ in range(n_nodes)]
        self._n_edges = 0
        #: Optional mutation observer with ``edge_added(u, v)`` /
        #: ``edge_removed(u, v)`` methods, called *after* each mutation.
        #: The incremental rating cache (repro.core.rating_cache) installs
        #: itself here so every prune/accept/repair path keeps it in sync
        #: without the callers knowing it exists.  One observer only — the
        #: disabled path is a single ``is None`` test per mutation.
        self.observer = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Current number of undirected edges."""
        return self._n_edges

    def degree(self, u: int) -> int:
        """Current degree of ``u``."""
        return len(self._adj[u])

    def neighbors(self, u: int) -> Dict[int, float]:
        """Live neighbor->latency mapping of ``u`` (do not mutate)."""
        return self._adj[u]

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``(u, v)`` is currently an edge."""
        return v in self._adj[u]

    def add_edge(self, u: int, v: int, latency: float) -> None:
        """Insert edge ``(u, v)``; raises if it exists or is a self loop."""
        if u == v:
            raise ValueError(f"self loop at node {u}")
        if v in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) already present")
        if latency < 0:
            raise ValueError(f"negative latency {latency} on edge ({u}, {v})")
        self._adj[u][v] = latency
        self._adj[v][u] = latency
        self._n_edges += 1
        if self.observer is not None:
            self.observer.edge_added(u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``; raises if absent."""
        if v not in self._adj[u]:
            raise KeyError(f"no edge ({u}, {v})")
        del self._adj[u][v]
        del self._adj[v][u]
        self._n_edges -= 1
        if self.observer is not None:
            self.observer.edge_removed(u, v)

    def freeze(self) -> OverlayGraph:
        """Snapshot into a frozen CSR :class:`OverlayGraph`."""
        total = 2 * self._n_edges
        indptr = np.zeros(self._n_nodes + 1, dtype=np.int64)
        indices = np.empty(total, dtype=np.int64)
        latency = np.empty(total, dtype=np.float64)
        pos = 0
        for u, nbrs in enumerate(self._adj):
            indptr[u] = pos
            if nbrs:
                ids = np.fromiter(nbrs.keys(), dtype=np.int64, count=len(nbrs))
                lats = np.fromiter(nbrs.values(), dtype=np.float64, count=len(nbrs))
                order = np.argsort(ids)
                indices[pos : pos + ids.size] = ids[order]
                latency[pos : pos + ids.size] = lats[order]
                pos += ids.size
        indptr[self._n_nodes] = pos
        return OverlayGraph(indptr, indices[:pos], latency[:pos])
