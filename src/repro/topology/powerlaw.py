"""Gnutella v0.4 power-law topology generator.

The paper compares Makalu against "a randomized power law topology (Gnutella
v0.4) using the parameters described in [Saroiu et al., Ripeanu et al.]".
Those measurement studies report a degree distribution ``P(d) ~ d^-tau``
with ``tau ~= 2.3`` and a small mean degree (~3.4).  This module implements
the standard power-law random graph (configuration-model) construction:

1. draw a degree sequence from a truncated discrete power law;
2. pair stubs uniformly at random;
3. delete self loops and collapse parallel edges (the conventional PLRG
   treatment — unlike the regular generator we do not repair, since hub
   nodes make repair both slow and distribution-distorting, and deleting a
   vanishing fraction of edges does not change the power-law shape);
4. optionally stitch stray components onto the giant component so that
   search experiments run on a connected overlay.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netmodel.base import NetworkModel
from repro.topology._latency import edge_latencies
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


def powerlaw_degree_sequence(
    n_nodes: int,
    exponent: float = 2.3,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw a degree sequence from a truncated discrete power law.

    ``P(d) ~ d**-exponent`` for ``min_degree <= d <= max_degree``.  The sum
    is forced even by incrementing one node's degree if needed (the pairing
    model needs an even stub count).
    """
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1 for a normalizable tail, got {exponent}")
    if min_degree < 1:
        raise ValueError(f"min_degree must be >= 1, got {min_degree}")
    if max_degree is None:
        # Natural cutoff for power-law graphs; keeps hubs below sqrt-scale
        # so the configuration model stays close to simple.
        max_degree = max(min_degree, int(np.sqrt(n_nodes)))
    if max_degree < min_degree:
        raise ValueError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )
    max_degree = min(max_degree, n_nodes - 1) if n_nodes > 1 else min_degree

    rng = as_generator(seed)
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    pmf = support**-exponent
    pmf /= pmf.sum()
    degrees = rng.choice(
        support.astype(np.int64), size=n_nodes, p=pmf
    )
    if degrees.sum() % 2 != 0:
        degrees[rng.integers(0, n_nodes)] += 1
    return degrees.astype(np.int64)


def powerlaw_graph(
    n_nodes: int,
    exponent: float = 2.3,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    connect: bool = True,
    model: Optional[NetworkModel] = None,
    seed: SeedLike = None,
) -> OverlayGraph:
    """Generate a Gnutella-v0.4-style power-law overlay.

    Parameters
    ----------
    connect:
        When True (default), every non-giant component is attached to the
        giant component with one extra edge from a random member, so the
        returned overlay is connected.  The measured Gnutella overlay was
        effectively one large component; search comparisons require this.
    """
    rng = as_generator(seed)
    degrees = powerlaw_degree_sequence(
        n_nodes, exponent=exponent, min_degree=min_degree, max_degree=max_degree,
        seed=rng,
    )
    stubs = np.repeat(np.arange(n_nodes, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]

    # Drop self loops; collapse parallel edges.
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * np.int64(n_nodes) + hi
    _, first = np.unique(key, return_index=True)
    u, v = lo[first], hi[first]

    if connect and n_nodes > 1:
        u, v = _stitch_components(n_nodes, u, v, rng)

    lat = edge_latencies(model, u, v)
    return OverlayGraph.from_edges(n_nodes, u, v, lat)


def _stitch_components(
    n_nodes: int, u: np.ndarray, v: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Add one edge per stray component linking it to the giant component."""
    import scipy.sparse as sp
    import scipy.sparse.csgraph as csgraph

    adj = sp.csr_matrix(
        (np.ones(u.size), (u, v)), shape=(n_nodes, n_nodes)
    )
    n_comp, labels = csgraph.connected_components(adj, directed=False)
    if n_comp <= 1:
        return u, v
    sizes = np.bincount(labels, minlength=n_comp)
    giant = int(sizes.argmax())
    giant_nodes = np.flatnonzero(labels == giant)
    extra_u, extra_v = [], []
    for comp in range(n_comp):
        if comp == giant:
            continue
        members = np.flatnonzero(labels == comp)
        a = int(rng.choice(members))
        b = int(rng.choice(giant_nodes))
        extra_u.append(a)
        extra_v.append(b)
    u = np.concatenate([u, np.asarray(extra_u, dtype=np.int64)])
    v = np.concatenate([v, np.asarray(extra_v, dtype=np.int64)])
    return u, v
