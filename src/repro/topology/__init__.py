"""Overlay graph structures and comparison topology generators.

:class:`OverlayGraph` (frozen CSR) and :class:`AdjacencyBuilder` (mutable)
are the graph substrate every kernel in the library operates on.  The
generators reproduce the paper's comparison overlays:

* :func:`k_regular_graph` — the "theoretical optimal" expander comparator;
* :func:`powerlaw_graph` — classic Gnutella v0.4 power-law topology;
* :func:`two_tier_graph` — modern Gnutella v0.6 ultrapeer/leaf topology.
"""

from repro.topology.gia import GiaTopology, gia_graph, sample_gia_capacities
from repro.topology.graph import AdjacencyBuilder, OverlayGraph
from repro.topology.io import load_graph, load_two_tier, save_graph, save_two_tier
from repro.topology.kregular import k_regular_graph
from repro.topology.powerlaw import powerlaw_degree_sequence, powerlaw_graph
from repro.topology.twotier import TwoTierTopology, two_tier_graph

__all__ = [
    "OverlayGraph",
    "AdjacencyBuilder",
    "k_regular_graph",
    "powerlaw_graph",
    "powerlaw_degree_sequence",
    "TwoTierTopology",
    "two_tier_graph",
    "GiaTopology",
    "gia_graph",
    "sample_gia_capacities",
    "save_graph",
    "load_graph",
    "save_two_tier",
    "load_two_tier",
]
