"""k-regular random graph generator.

The paper uses k-regular random graphs as the "theoretical optimal" expander
comparator (generated there with the Kim–Vu algorithm).  This module uses
the standard pairing (configuration) model with an edge-swap repair pass:
stubs are shuffled and paired; self loops and parallel edges are then
eliminated by double-edge swaps against randomly chosen good edges, which
preserves the degree sequence exactly.  The result is an asymptotically
uniform random regular graph — the property the paper actually relies on is
that such graphs are good expanders with high probability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netmodel.base import NetworkModel
from repro.topology._latency import edge_latencies
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


def k_regular_graph(
    n_nodes: int,
    k: int,
    model: Optional[NetworkModel] = None,
    seed: SeedLike = None,
    max_rounds: int = 200,
) -> OverlayGraph:
    """Generate a simple k-regular random graph on ``n_nodes`` nodes.

    Parameters
    ----------
    n_nodes, k:
        ``n_nodes * k`` must be even and ``k < n_nodes``.
    model:
        Optional physical substrate supplying edge latencies (unit latency
        otherwise).
    seed:
        RNG seed.
    max_rounds:
        Repair-pass budget before a full reshuffle; a handful of rounds
        suffices for any practical (n, k).
    """
    if k < 0 or k >= n_nodes:
        raise ValueError(f"need 0 <= k < n_nodes, got k={k}, n_nodes={n_nodes}")
    if (n_nodes * k) % 2 != 0:
        raise ValueError(f"n_nodes * k must be even, got {n_nodes} * {k}")
    rng = as_generator(seed)
    if k == 0:
        return OverlayGraph.from_edges(n_nodes, np.empty(0, np.int64), np.empty(0, np.int64))

    for _attempt in range(20):
        edges = _pair_and_repair(n_nodes, k, rng, max_rounds)
        if edges is not None:
            u, v = edges
            lat = edge_latencies(model, u, v)
            return OverlayGraph.from_edges(n_nodes, u, v, lat)
    raise RuntimeError(
        f"failed to build a simple {k}-regular graph on {n_nodes} nodes "
        f"after 20 reshuffles"
    )


def _pair_and_repair(
    n_nodes: int, k: int, rng: np.random.Generator, max_rounds: int
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """One pairing attempt followed by swap repair; None if repair stalls."""
    stubs = np.repeat(np.arange(n_nodes, dtype=np.int64), k)
    rng.shuffle(stubs)
    u = stubs[0::2].copy()
    v = stubs[1::2].copy()

    for _round in range(max_rounds):
        bad = _bad_edges(u, v)
        if bad.size == 0:
            return u, v
        # Swap each bad edge against a uniformly random partner edge:
        # (a, b) + (c, d) -> (a, c) + (b, d).  Degree sequence is invariant;
        # invalid proposals are simply retried next round.
        partners = rng.integers(0, u.size, size=bad.size)
        for e, f in zip(bad, partners):
            a, b = u[e], v[e]
            c, d = u[f], v[f]
            # Reject proposals whose new edges (a, c) and (b, d) would be
            # self loops; note a == b (repairing a self loop) is fine.
            if e == f or a == c or b == d:
                continue
            u[e], v[e] = a, c
            u[f], v[f] = b, d
        # De-duplication happens implicitly: _bad_edges re-flags anything
        # the swaps broke.
    return None


def _bad_edges(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Indices of edges that are self loops or members of a parallel pair.

    For each group of parallel edges all but the first are flagged; flagged
    edges get rewired by the repair pass.
    """
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * (hi.max() + 2) + hi  # unique per unordered pair
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    dup_mask = np.zeros(u.size, dtype=bool)
    dup_mask[order[1:]] = sorted_key[1:] == sorted_key[:-1]
    return np.flatnonzero(dup_mask | (u == v))
