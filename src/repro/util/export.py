"""Plain-CSV export of experiment series.

The benchmark harness prints human-readable tables; downstream users who
want to re-plot the paper's figures need machine-readable series.  These
helpers write simple headered CSV without any dependency beyond the
standard library.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence


def save_series_csv(path: str, columns: Mapping[str, Sequence]) -> str:
    """Write named, equal-length columns as a CSV file.

    Parent directories are created as needed; the written path is
    returned.  Column order follows the mapping's insertion order.
    """
    if not columns:
        raise ValueError("need at least one column")
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"columns must be equal length, got {lengths}")

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    names = list(columns)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in zip(*(columns[name] for name in names)):
            writer.writerow(row)
    return path


def load_series_csv(path: str) -> dict[str, list[str]]:
    """Read a CSV written by :func:`save_series_csv` (values as strings)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        columns: dict[str, list[str]] = {name: [] for name in header}
        for row in reader:
            if len(row) != len(header):
                raise ValueError(f"malformed row {row!r} in {path}")
            for name, value in zip(header, row):
                columns[name].append(value)
    return columns
