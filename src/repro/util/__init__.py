"""Shared low-level utilities: RNG plumbing, hashing, CSR segment kernels.

Nothing in this package knows about overlays or searches; it is the
foundation layer every other ``repro`` subpackage builds on.
"""

from repro.util.hashing import hash_pair_u64, splitmix64
from repro.util.rng import as_generator, spawn_generators
from repro.util.segments import (
    segment_bitwise_or,
    segment_counts,
    segment_max,
    segment_sum,
)
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "splitmix64",
    "hash_pair_u64",
    "segment_bitwise_or",
    "segment_counts",
    "segment_max",
    "segment_sum",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_square_matrix",
]
