"""Deterministic random-number plumbing.

Every stochastic entry point in the library accepts either an integer seed,
``None`` (fresh OS entropy) or an existing :class:`numpy.random.Generator`.
``as_generator`` normalizes all three so call sites never branch, and
``spawn_generators`` derives independent child streams for sub-experiments
(e.g. the paper's "100 separate runs with each run issuing 1,000 queries").
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged, so a caller can
    thread one stream through a whole experiment; passing an ``int`` gives a
    reproducible fresh stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or numpy Generator, got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are independent of each other *and* of the parent stream, so
    per-run workloads do not perturb one another when a run count changes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = as_generator(seed)
    seq = parent.bit_generator.seed_seq
    if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover - exotic BGs
        seq = np.random.SeedSequence(int(parent.integers(0, 2**63)))
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, salt: int) -> int:
    """Mix ``salt`` into ``seed`` to label a sub-experiment deterministically.

    Unlike :func:`spawn_generators` this never consumes state from a shared
    generator, so two sub-experiments with different salts are reproducible
    regardless of call order.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1, dtype=np.uint64)[0])
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1, dtype=np.uint64)[0])
    else:
        base = int(seed)
    with np.errstate(over="ignore"):
        mixed = np.uint64(base) ^ (np.uint64(salt) * np.uint64(0x9E3779B97F4A7C15))
    return int(mixed & np.uint64(2**63 - 1))


def state_fingerprint(gen: np.random.Generator) -> str:
    """Stable hex digest of a generator's internal state.

    Two generators with identical fingerprints will produce identical
    future draws.  The observability layer's determinism guard compares
    fingerprints before/after an instrumented run against an
    uninstrumented one to prove that enabling metrics/tracing/profiling
    never consumes or perturbs an RNG stream
    (``tests/obs/test_determinism.py``).
    """
    import hashlib
    import json

    state = gen.bit_generator.state

    def canonical(obj):
        if isinstance(obj, dict):
            return {k: canonical(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [canonical(v) for v in obj]
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.integer):
            return int(obj)
        return obj

    payload = json.dumps(canonical(state), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def sample_without_replacement(
    rng: np.random.Generator,
    population: int,
    k: int,
    exclude: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Sample ``k`` distinct ints from ``range(population)``, skipping ``exclude``.

    Used for uniform-random replica placement and query-source selection.
    Raises if the request cannot be satisfied.
    """
    if k < 0:
        raise ValueError(f"cannot sample a negative count: {k}")
    if exclude is None or len(exclude) == 0:
        if k > population:
            raise ValueError(f"cannot sample {k} from population of {population}")
        return rng.choice(population, size=k, replace=False)
    excl = np.unique(np.asarray(exclude, dtype=np.int64))
    if excl.size and (excl[0] < 0 or excl[-1] >= population):
        raise ValueError("exclude contains ids outside the population")
    available = population - excl.size
    if k > available:
        raise ValueError(
            f"cannot sample {k}: only {available} ids remain after exclusions"
        )
    # Sample positions in the compacted id space, then shift past exclusions.
    picks = rng.choice(available, size=k, replace=False)
    picks.sort()
    shifted = picks + np.searchsorted(excl - np.arange(excl.size), picks, side="right")
    return shifted
