"""Vectorized 64-bit integer hashing for Bloom filters and query ids.

Bloom-filter bit positions are derived with the classic Kirsch–Mitzenmacher
double-hashing scheme ``h_i = h1 + i * h2``; both base hashes come from
independently salted splitmix64 finalizers, which pass standard avalanche
tests and vectorize to a handful of numpy ops.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray | int, salt: int = 0) -> np.ndarray:
    """splitmix64 finalizer, vectorized over an integer array.

    ``salt`` selects an independent hash family member (used to derive the
    two base hashes for double hashing).
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64) + _GOLDEN * np.uint64(salt + 1)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


def hash_pair_u64(keys: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Return two independent 64-bit hashes (h1, h2) for each key.

    ``h2`` is forced odd so that double-hashed probe sequences cover a
    power-of-two bit space without short cycles.
    """
    h1 = splitmix64(keys, salt=0x51)
    h2 = splitmix64(keys, salt=0xA7) | np.uint64(1)
    return h1, h2


def bloom_bit_positions(keys: np.ndarray | int, n_hashes: int, n_bits: int) -> np.ndarray:
    """Bit positions set by each key in a Bloom filter of ``n_bits`` bits.

    Returns an array of shape ``(len(keys), n_hashes)``. ``n_bits`` need not
    be a power of two; positions are reduced modulo ``n_bits``.
    """
    if n_hashes <= 0:
        raise ValueError(f"n_hashes must be positive, got {n_hashes}")
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    h1, h2 = hash_pair_u64(np.atleast_1d(np.asarray(keys, dtype=np.uint64)))
    i = np.arange(n_hashes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        probes = h1[:, None] + i[None, :] * h2[:, None]
    return (probes % np.uint64(n_bits)).astype(np.int64)


def string_to_key(name: str) -> int:
    """Map an object name to a stable 63-bit integer key.

    The simulator identifies objects by integer keys; this helper lets the
    examples and trace replays use human-readable names.
    """
    acc = np.uint64(1469598103934665603)  # FNV-1a offset basis
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for byte in name.encode("utf-8"):
            acc = (acc ^ np.uint64(byte)) * prime
    return int(acc & np.uint64(2**63 - 1))
