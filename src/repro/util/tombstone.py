"""An append-ordered collection with O(log n) removal and O(log n) indexing.

:class:`TombstoneList` replaces the plain ``list`` the Makalu builder kept
its joined-node roster in.  The roster is read three ways on hot paths:

* **uniform picks** — ``rng.integers(0, len(joined))`` then ``joined[i]``
  (bootstrap seed peers);
* **membership** — "is this node still in the candidate pool?";
* **ordered iteration** — refinement rounds walk the roster.

and written two ways: a node is appended on join and removed on departure/
failure.  With a plain list, removal preserving order is an O(n) rebuild —
quadratic under heavy churn where every departure removes one node.

Here removal just *tombstones* the physical slot and updates a Fenwick
(binary indexed) tree of alive counts, so the logical sequence — alive
items in append order — is unchanged while removal costs O(log n).
Logical indexing is a Fenwick order-statistics ``select`` (the i-th alive
slot), also O(log n).  Crucially the logical sequence is **identical** to
what the old compact list held at every point in time, so seeded
simulations draw the same picks and follow bit-identical trajectories.

When more than half the physical slots are tombstones the storage is
compacted (O(n), amortized O(1) per removal).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

#: Compaction never triggers below this many tombstones, so small rosters
#: (unit tests, tiny sims) keep their physical layout stable.
_MIN_COMPACT = 64


class TombstoneList:
    """Append-ordered int collection with tombstoned O(log n) removal.

    The logical content is the subsequence of alive items in append order;
    ``__len__`` / ``__iter__`` / ``__getitem__`` / ``__contains__`` all
    speak logical terms.  Items are hashable node ids and must be unique
    among alive entries (re-appending a removed id is fine — that is the
    rejoin-after-departure pattern).
    """

    __slots__ = ("_items", "_alive", "_pos", "_fen", "_n_alive")

    def __init__(self, items: Iterable[int] = ()):
        self._items: List[int] = []
        self._alive = bytearray()
        self._pos = {}  # item -> physical slot (alive entries only)
        self._fen: List[int] = [0]  # 1-indexed Fenwick tree of alive flags
        self._n_alive = 0
        for x in items:
            self.append(x)

    # ------------------------------------------------------------------
    # Fenwick helpers (1-indexed over physical slots)
    # ------------------------------------------------------------------

    def _prefix(self, i: int) -> int:
        """Alive count in physical slots [0, i) (i is 1-indexed exclusive)."""
        fen, s = self._fen, 0
        while i > 0:
            s += fen[i]
            i -= i & -i
        return s

    def _add(self, i: int, delta: int) -> None:
        fen = self._fen
        n = len(fen) - 1
        while i <= n:
            fen[i] += delta
            i += i & -i

    def _select(self, k: int) -> int:
        """Physical slot of the k-th (0-based) alive item."""
        fen = self._fen
        pos, remaining = 0, k + 1
        bit = 1 << (len(fen) - 1).bit_length()
        while bit:
            nxt = pos + bit
            if nxt < len(fen) and fen[nxt] < remaining:
                pos = nxt
                remaining -= fen[nxt]
            bit >>= 1
        return pos  # 0-indexed physical slot (pos is 1-indexed - 1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, x: int) -> None:
        """Append ``x`` to the logical end; it must not already be alive."""
        if x in self._pos:
            raise ValueError(f"{x} is already in the list")
        phys = len(self._items)
        self._items.append(x)
        self._alive.append(1)
        self._pos[x] = phys
        # Fenwick append: node i covers slots (i - lowbit(i), i].
        i = phys + 1
        self._fen.append(1 + self._prefix(i - 1) - self._prefix(i - (i & -i)))
        self._n_alive += 1

    def discard(self, x: int) -> bool:
        """Remove ``x`` if alive; returns whether anything was removed."""
        phys = self._pos.pop(x, None)
        if phys is None:
            return False
        self._alive[phys] = 0
        self._add(phys + 1, -1)
        self._n_alive -= 1
        return True

    def discard_many(self, xs: Iterable[int]) -> int:
        """Remove every alive member of ``xs``; returns the count removed.

        O(k log n) for k removals, plus amortized compaction — this is the
        operation that replaces the old O(n) full-list rebuild per failure
        event.
        """
        removed = sum(1 for x in xs if self.discard(x))
        dead = len(self._items) - self._n_alive
        if dead > _MIN_COMPACT and dead > self._n_alive:
            self._compact()
        return removed

    def _compact(self) -> None:
        items = [x for x, a in zip(self._items, self._alive) if a]
        self._items = items
        self._alive = bytearray(b"\x01" * len(items))
        self._pos = {x: i for i, x in enumerate(items)}
        fen = [0] * (len(items) + 1)
        for i in range(1, len(fen)):
            fen[i] = i & -i  # all alive: node i covers lowbit(i) slots
        self._fen = fen

    # ------------------------------------------------------------------
    # Logical reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_alive

    def __contains__(self, x) -> bool:
        return x in self._pos

    def __iter__(self) -> Iterator[int]:
        return (x for x, a in zip(self._items, self._alive) if a)

    def __getitem__(self, k: int) -> int:
        if not isinstance(k, (int, np.integer)):
            raise TypeError("TombstoneList indices must be integers")
        if k < 0:
            k += self._n_alive
        if not 0 <= k < self._n_alive:
            raise IndexError("TombstoneList index out of range")
        return self._items[self._select(int(k))]

    def to_array(self) -> np.ndarray:
        """Alive items in logical order as an int64 array."""
        if self._n_alive == len(self._items):
            return np.asarray(self._items, dtype=np.int64)
        return np.fromiter(iter(self), dtype=np.int64, count=self._n_alive)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = self.to_array()
        return arr.astype(dtype) if dtype is not None else arr

    def __eq__(self, other) -> bool:
        if isinstance(other, TombstoneList):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TombstoneList({list(self)!r})"
