"""Small argument-validation helpers shared across the library.

These raise early with precise messages so simulator misconfiguration fails
at the API boundary instead of deep inside a vectorized kernel.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Require ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value <= 1`` — e.g. a replication ratio."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be a fraction in (0, 1], got {value!r}")
    return float(value)


def check_square_matrix(name: str, matrix: np.ndarray) -> np.ndarray:
    """Require a square 2-D array and return it as float64."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square 2-D matrix, got shape {matrix.shape}")
    return matrix


def check_node_id(name: str, node: int, n_nodes: int) -> int:
    """Require ``0 <= node < n_nodes``."""
    node = int(node)
    if not 0 <= node < n_nodes:
        raise ValueError(f"{name} must be a node id in [0, {n_nodes}), got {node}")
    return node
