"""Segment reductions over CSR-style (indptr, data) layouts.

The overlay graphs, flood kernels and attenuated-Bloom-filter aggregation all
store per-node variable-length data as a flat array plus an ``indptr`` offset
vector (the scipy CSR convention).  These helpers implement the per-segment
reductions those kernels need, working around the ``ufunc.reduceat`` quirks
with empty segments (reduceat returns ``data[start]`` for an empty segment
and raises for a start index past the end of the data array).
"""

from __future__ import annotations

import numpy as np


def _check_indptr(indptr: np.ndarray, data_len: int) -> np.ndarray:
    indptr = np.asarray(indptr)
    if indptr.ndim != 1 or indptr.size == 0:
        raise ValueError("indptr must be a non-empty 1-D array")
    if indptr[0] != 0 or indptr[-1] != data_len:
        raise ValueError(
            f"indptr must start at 0 and end at len(data)={data_len}, "
            f"got [{indptr[0]}, ..., {indptr[-1]}]"
        )
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    return indptr.astype(np.int64, copy=False)


def segment_counts(indptr: np.ndarray) -> np.ndarray:
    """Length of each segment (a node's degree, in CSR adjacency terms)."""
    indptr = np.asarray(indptr)
    return np.diff(indptr).astype(np.int64)


def _reduceat(ufunc, data: np.ndarray, indptr: np.ndarray, empty_value) -> np.ndarray:
    """Apply ``ufunc.reduceat`` per segment with empty segments -> empty_value.

    ``reduceat`` treats each passed index as running to the *next passed
    index*, so empty segments cannot simply be clipped into range — that
    would truncate the preceding segment.  Instead the reduction runs over
    non-empty segments only (whose starts are then consecutive segment
    boundaries) and results are scattered back.
    """
    n = indptr.size - 1
    starts = indptr[:-1]
    empty = indptr[1:] == starts
    out_shape = (n,) + data.shape[1:]
    out = np.empty(out_shape, dtype=data.dtype)
    out[...] = empty_value
    if data.shape[0] == 0 or empty.all():
        return out
    non_empty = ~empty
    out[non_empty] = ufunc.reduceat(data, starts[non_empty], axis=0)
    return out


def segment_sum(data: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sum; empty segments sum to 0."""
    data = np.asarray(data)
    indptr = _check_indptr(indptr, data.shape[0])
    return _reduceat(np.add, data, indptr, empty_value=0)


def segment_max(data: np.ndarray, indptr: np.ndarray, empty_value=0) -> np.ndarray:
    """Per-segment max; empty segments yield ``empty_value``."""
    data = np.asarray(data)
    indptr = _check_indptr(indptr, data.shape[0])
    return _reduceat(np.maximum, data, indptr, empty_value=empty_value)


def segment_bitwise_or(
    data: np.ndarray, indptr: np.ndarray, chunk_rows: int = 1 << 18
) -> np.ndarray:
    """Per-segment bitwise OR of 2-D uint rows; empty segments yield zeros.

    This is the inner kernel of attenuated-Bloom-filter aggregation: ``data``
    holds one filter row per (node, neighbor) pair in CSR order and the
    result is each node's OR over its neighbors' filters.  Work is chunked
    over whole segments so the gathered intermediate stays below roughly
    ``chunk_rows`` rows regardless of network size.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (rows of filter words), got {data.ndim}-D")
    if not np.issubdtype(data.dtype, np.integer):
        raise ValueError(f"data must be an integer dtype, got {data.dtype}")
    indptr = _check_indptr(indptr, data.shape[0])
    n = indptr.size - 1
    out = np.zeros((n,) + data.shape[1:], dtype=data.dtype)
    seg = 0
    while seg < n:
        # Advance by whole segments until the chunk holds ~chunk_rows rows.
        end = int(np.searchsorted(indptr, indptr[seg] + chunk_rows, side="left"))
        end = max(end, seg + 1)
        end = min(end, n)
        local_ptr = indptr[seg : end + 1] - indptr[seg]
        block = data[indptr[seg] : indptr[end]]
        out[seg:end] = _reduceat(np.bitwise_or, block, local_ptr, empty_value=0)
        seg = end
    return out
