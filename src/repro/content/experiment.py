"""Canonical durability experiment: content plane under injected faults.

One parameterization shared by the ``repro content`` CLI, the golden fault
tests, and ``benchmarks/bench_durability.py``, so every consumer measures
the *same* seeded run.  The corpus, placement, and fetch-probe streams all
derive from the experiment seed with distinct salts
(:func:`repro.util.rng.derive_seed`), making arms comparable: a
healing-off run replays the exact crash/churn trajectory of the healing-on
run and differs only in what the content plane does about it.

:func:`hub_failure_scenario` builds the negative-control stress — the
``paper-live-failures`` schedule with the crash widened to a targeted
40% top-degree hub failure, the Guclu & Yuksel regime where correlated
hub loss takes the most replicas down at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.content.manifest import generate_objects
from repro.content.plane import (
    ContentConfig,
    ContentPlane,
    DurabilityReport,
    DurabilitySample,
)
from repro.faults.scenario import (
    BUILTIN_SCENARIOS,
    CrashEvent,
    FaultScenario,
    load_scenario,
)
from repro.sim.churn import ChurnConfig, ChurnSimulation, ChurnSnapshot

#: Corpus and placement derive from the experiment seed with these salts,
#: so the two streams are independent of each other and of the churn seed.
_CORPUS_SALT = 0xC0B9
_PLACEMENT_SALT = 0x9A1CE


def hub_failure_scenario(
    fraction: float = 0.40, waves: int = 2
) -> FaultScenario:
    """Repeated targeted hub failure: ``waves`` top-degree crashes of
    ``fraction`` each (t=40, 80, ...), over ``paper-live-failures``'s
    always-on 5% loss and partition/heal cycle.

    A single correlated crash can only be survived by having placed enough
    replicas; *repeated* crashes are where healing earns its keep — a
    healing-off plane enters wave two still degraded from wave one, while
    healing restores ``k`` live replicas in between.  This is the negative
    control's stress.
    """
    base = BUILTIN_SCENARIOS["paper-live-failures"]
    if waves < 1:
        raise ValueError(f"waves must be >= 1, got {waves}")
    return FaultScenario(
        name=f"hub-failure-{int(round(fraction * 100))}",
        description=(
            f"{waves} wave(s) of {fraction:.0%} top-degree crashes "
            f"(t=40, 80, ...) under 5% loss with a partition/heal cycle "
            f"(targeted hub failure)"
        ),
        crashes=tuple(
            CrashEvent(time=40.0 * (i + 1), fraction=fraction,
                       mode="top-degree")
            for i in range(waves)
        ),
        loss_windows=base.loss_windows,
        partitions=base.partitions,
    )


def build_placement(
    n_nodes: int = 120,
    n_objects: int = 60,
    seed: int = 1234,
    k: int = 3,
    size_range: Tuple[int, int] = (2048, 8192),
):
    """Static corpus + placement over a seeded Makalu overlay.

    The corpus and placement use the same seed salts as
    :func:`run_durability`, so ``repro content place`` previews the same
    *objects* with the same placement discipline a durability run at this
    seed uses.  (The graph itself is a plain :func:`makalu_graph` build
    — the churn sim evolves its own membership-backed overlay, so holder
    ids differ between the preview and a full run.)  Returns ``(graph,
    objects, placement)``.
    """
    from repro.content.placement import place_content
    from repro.core.makalu import makalu_graph
    from repro.util.rng import derive_seed

    graph = makalu_graph(n_nodes=n_nodes, seed=seed)
    objects = generate_objects(
        n_objects, seed=derive_seed(seed, _CORPUS_SALT),
        size_range=size_range,
    )
    placement = place_content(
        graph, [o.key for o in objects], k=k,
        seed=derive_seed(seed, _PLACEMENT_SALT),
    )
    return graph, objects, placement


@dataclass
class DurabilityResult:
    """One durability arm: the sim trajectory plus the content ledger."""

    scenario: Optional[str]
    heal_enabled: bool
    snapshots: List[ChurnSnapshot]
    samples: List[DurabilitySample]
    report: DurabilityReport
    plane: ContentPlane
    sim: ChurnSimulation


def run_durability(
    n_nodes: int = 120,
    n_objects: int = 60,
    duration: float = 150.0,
    seed: int = 1234,
    scenario: Union[None, str, FaultScenario] = "paper-live-failures",
    k: int = 3,
    heal_enabled: bool = True,
    heal_interval: float = 10.0,
    read_repair: bool = True,
    rebalance_on_join: bool = True,
    fetch_probes: int = 8,
    snapshot_interval: float = 10.0,
    size_range: Tuple[int, int] = (2048, 8192),
) -> DurabilityResult:
    """Run the canonical durability experiment and return its ledger.

    ``scenario`` accepts a builtin name, a scenario file path, a
    :class:`FaultScenario`, or None for fault-free churn.
    """
    if isinstance(scenario, str):
        scenario = load_scenario(scenario)
    from repro.util.rng import derive_seed

    objects = generate_objects(
        n_objects, seed=derive_seed(seed, _CORPUS_SALT),
        size_range=size_range,
    )
    plane = ContentPlane(objects, ContentConfig(
        k=k, heal_interval=heal_interval, heal_enabled=heal_enabled,
        read_repair=read_repair, rebalance_on_join=rebalance_on_join,
        fetch_probes=fetch_probes,
        placement_seed=derive_seed(seed, _PLACEMENT_SALT),
    ))
    sim = ChurnSimulation(
        n_nodes=n_nodes, seed=seed,
        churn_config=ChurnConfig(snapshot_interval=snapshot_interval),
        faults=scenario, content=plane,
    )
    snapshots = sim.run(duration)
    return DurabilityResult(
        scenario=scenario.name if scenario is not None else None,
        heal_enabled=heal_enabled,
        snapshots=snapshots,
        samples=list(plane.samples),
        report=plane.durability_report(),
        plane=plane,
        sim=sim,
    )
