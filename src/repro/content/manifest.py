"""Chunked objects and their digest manifests.

An object is an opaque byte string identified by a 63-bit key (the same
keys the Bloom filters and flood criteria use).  On the wire and in the
stores it travels as fixed-size chunks; a :class:`Manifest` binds the
object to its ordered chunk digests so any holder can verify a chunk in
isolation and any fetcher can verify the reassembled whole.

The manifest JSON form is documented by
``schemas/content_manifest.schema.json`` and versioned with
:data:`MANIFEST_SCHEMA_VERSION`; loading a newer version raises
:class:`~repro.obs.report.UnsupportedSchemaError`, matching the fault
scenario loader's contract.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.obs.report import UnsupportedSchemaError
from repro.util.rng import SeedLike, as_generator

#: Format version written by :meth:`Manifest.to_dict`.
MANIFEST_SCHEMA_VERSION = 1

#: Default chunk size.  Must leave room for the 12-byte ChunkData prefix
#: under the live framer's 64 KiB payload cap; 2 KiB matches the order of
#: magnitude the v0.4-era servents actually moved per read.
DEFAULT_CHUNK_SIZE = 2048

_MAX_KEY = 2**63 - 1


class IntegrityError(ValueError):
    """A chunk or reassembled object failed digest verification."""


def chunk_digest(data: bytes) -> str:
    """SHA-256 hex digest of one chunk's bytes."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Manifest:
    """One object's identity: key, size, and ordered chunk digests.

    ``chunk_digests[i]`` is the SHA-256 hex digest of chunk ``i``; every
    chunk is exactly ``chunk_size`` bytes except the last, which carries
    the remainder.  An empty object (``size == 0``) has no chunks.
    """

    key: int
    size: int
    chunk_size: int
    chunk_digests: Tuple[str, ...]

    def __post_init__(self):
        if not 0 <= self.key <= _MAX_KEY:
            raise ValueError(f"key must be a 63-bit non-negative int, got {self.key}")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        expected = math.ceil(self.size / self.chunk_size)
        if len(self.chunk_digests) != expected:
            raise ValueError(
                f"size {self.size} at chunk_size {self.chunk_size} implies "
                f"{expected} chunk(s), got {len(self.chunk_digests)} digest(s)"
            )
        for i, d in enumerate(self.chunk_digests):
            if len(d) != 64 or any(c not in "0123456789abcdef" for c in d):
                raise ValueError(
                    f"chunk_digests[{i}] is not a lowercase sha256 hex digest"
                )

    @property
    def n_chunks(self) -> int:
        """Number of chunks the object splits into."""
        return len(self.chunk_digests)

    def chunk_length(self, index: int) -> int:
        """Byte length of chunk ``index``."""
        if not 0 <= index < self.n_chunks:
            raise IndexError(f"chunk index {index} out of range")
        if index < self.n_chunks - 1:
            return self.chunk_size
        return self.size - self.chunk_size * (self.n_chunks - 1)

    @property
    def digest(self) -> str:
        """Object-level identity: SHA-256 over the metadata + digest list."""
        h = hashlib.sha256()
        h.update(f"{self.key}:{self.size}:{self.chunk_size}".encode())
        for d in self.chunk_digests:
            h.update(bytes.fromhex(d))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # JSON round trip (schemas/content_manifest.schema.json)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form, loadable by :meth:`from_dict`."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "key": self.key,
            "size": self.size,
            "chunk_size": self.chunk_size,
            "chunk_digests": list(self.chunk_digests),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Manifest":
        """Parse and validate a manifest document."""
        if not isinstance(doc, dict):
            raise ValueError("manifest must be a JSON object")
        version = doc.get("schema_version", MANIFEST_SCHEMA_VERSION)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"bad manifest schema_version: {version!r}")
        if version > MANIFEST_SCHEMA_VERSION:
            raise UnsupportedSchemaError(
                f"manifest schema_version {version} is newer than the "
                f"supported version {MANIFEST_SCHEMA_VERSION}; upgrade repro "
                f"to read this file"
            )
        known = {"schema_version", "key", "size", "chunk_size",
                 "chunk_digests", "digest"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown manifest keys: {unknown}")
        digests = doc.get("chunk_digests", [])
        if not isinstance(digests, list):
            raise ValueError("manifest chunk_digests must be a list")
        manifest = cls(
            key=int(doc["key"]), size=int(doc["size"]),
            chunk_size=int(doc["chunk_size"]),
            chunk_digests=tuple(str(d) for d in digests),
        )
        declared = doc.get("digest")
        if declared is not None and declared != manifest.digest:
            raise IntegrityError(
                f"manifest digest mismatch for key {manifest.key}: "
                f"declared {declared}, computed {manifest.digest}"
            )
        return manifest


def chunk_object(
    key: int, data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Tuple[Manifest, List[bytes]]:
    """Split ``data`` into chunks and build the binding manifest."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]
    manifest = Manifest(
        key=key, size=len(data), chunk_size=chunk_size,
        chunk_digests=tuple(chunk_digest(c) for c in chunks),
    )
    return manifest, chunks


def reassemble(
    manifest: Manifest, chunks: Union[Sequence[bytes], Dict[int, bytes]]
) -> bytes:
    """Rebuild and verify the object from its chunks.

    Accepts a sequence or an ``index -> bytes`` mapping; raises
    :class:`IntegrityError` on a missing chunk, a digest mismatch, or a
    wrong chunk length — a fetcher must never hand corrupt bytes upward.
    """
    if not isinstance(chunks, dict):
        chunks = dict(enumerate(chunks))
    parts: List[bytes] = []
    for i in range(manifest.n_chunks):
        chunk = chunks.get(i)
        if chunk is None:
            raise IntegrityError(
                f"object {manifest.key}: chunk {i}/{manifest.n_chunks} is missing"
            )
        if len(chunk) != manifest.chunk_length(i):
            raise IntegrityError(
                f"object {manifest.key}: chunk {i} is {len(chunk)} bytes, "
                f"manifest says {manifest.chunk_length(i)}"
            )
        if chunk_digest(chunk) != manifest.chunk_digests[i]:
            raise IntegrityError(
                f"object {manifest.key}: chunk {i} failed digest verification"
            )
        parts.append(chunk)
    return b"".join(parts)


@dataclass(frozen=True)
class ContentObject:
    """One synthetic corpus entry: a manifest and its chunk bytes."""

    manifest: Manifest
    chunks: Tuple[bytes, ...]

    @property
    def key(self) -> int:
        """The object's 63-bit key."""
        return self.manifest.key

    @property
    def size(self) -> int:
        """The object's byte size."""
        return self.manifest.size

    def data(self) -> bytes:
        """The full (verified) object bytes."""
        return reassemble(self.manifest, list(self.chunks))


def generate_objects(
    n_objects: int,
    seed: SeedLike = None,
    size_range: Tuple[int, int] = (4096, 16384),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[ContentObject]:
    """A deterministic synthetic corpus of ``n_objects`` chunked objects.

    Keys are distinct 62-bit ints and payload bytes come from the seeded
    stream, so the same seed reproduces the same corpus everywhere (sim,
    live runtime, CLI, benchmarks).
    """
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    lo, hi = size_range
    if not 0 <= lo <= hi:
        raise ValueError(f"invalid size_range {size_range}")
    rng = as_generator(seed)
    keys = rng.integers(1, 2**62, size=n_objects, dtype=np.int64)
    while np.unique(keys).size != n_objects:  # pragma: no cover - astronomically rare
        keys = rng.integers(1, 2**62, size=n_objects, dtype=np.int64)
    objects = []
    for key in keys:
        size = int(rng.integers(lo, hi + 1))
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        manifest, chunks = chunk_object(int(key), data, chunk_size=chunk_size)
        objects.append(ContentObject(manifest=manifest, chunks=tuple(chunks)))
    return objects
