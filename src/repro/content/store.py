"""Per-node content store: manifests plus verified chunks.

One :class:`ContentStore` is one node's disk.  It is deliberately dumb —
placement, repair, and healing policy live in the planes
(:mod:`repro.content.plane`, :mod:`repro.content.live`); the store only
guarantees that what it holds verifies against its manifests and that
completeness (`has_object`) is checked, never assumed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.content.manifest import (
    IntegrityError,
    Manifest,
    chunk_digest,
    reassemble,
)


class ContentStore:
    """Chunk-granular object storage for one node."""

    def __init__(self, node_id: int = -1):
        self.node_id = node_id
        self._manifests: Dict[int, Manifest] = {}
        self._chunks: Dict[int, Dict[int, bytes]] = {}
        #: Total verified chunk bytes currently held.
        self.bytes_stored = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put_manifest(self, manifest: Manifest) -> None:
        """Register an object's manifest (idempotent for equal manifests).

        A *different* manifest under the same key is a protocol violation
        upstream; the store refuses it rather than silently mixing chunk
        sets that can never verify together.
        """
        existing = self._manifests.get(manifest.key)
        if existing is not None and existing != manifest:
            raise IntegrityError(
                f"store {self.node_id}: conflicting manifest for key "
                f"{manifest.key}"
            )
        self._manifests[manifest.key] = manifest
        self._chunks.setdefault(manifest.key, {})

    def put_chunk(self, key: int, index: int, data: bytes) -> bool:
        """Store one chunk after verifying it; returns completion state.

        Raises :class:`IntegrityError` when no manifest is registered for
        ``key`` or the chunk fails digest/length verification.  Returns
        True when this write completed the object.
        """
        manifest = self._manifests.get(key)
        if manifest is None:
            raise IntegrityError(
                f"store {self.node_id}: chunk for unknown object {key}"
            )
        if not 0 <= index < manifest.n_chunks:
            raise IntegrityError(
                f"store {self.node_id}: object {key} has no chunk {index}"
            )
        if len(data) != manifest.chunk_length(index):
            raise IntegrityError(
                f"store {self.node_id}: object {key} chunk {index} is "
                f"{len(data)} bytes, manifest says {manifest.chunk_length(index)}"
            )
        if chunk_digest(data) != manifest.chunk_digests[index]:
            raise IntegrityError(
                f"store {self.node_id}: object {key} chunk {index} failed "
                f"digest verification"
            )
        held = self._chunks[key]
        if index not in held:
            self.bytes_stored += len(data)
        held[index] = data
        return len(held) == manifest.n_chunks

    def put_object(self, manifest: Manifest, chunks) -> None:
        """Store a whole object (manifest + every chunk)."""
        self.put_manifest(manifest)
        for i, chunk in enumerate(chunks):
            self.put_chunk(manifest.key, i, chunk)

    def drop_object(self, key: int) -> None:
        """Forget one object entirely (no-op when absent)."""
        self._manifests.pop(key, None)
        held = self._chunks.pop(key, None)
        if held:
            self.bytes_stored -= sum(len(c) for c in held.values())

    def wipe(self) -> None:
        """Lose everything — the crash-with-disk-loss hook."""
        self._manifests.clear()
        self._chunks.clear()
        self.bytes_stored = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def manifest(self, key: int) -> Optional[Manifest]:
        """The manifest of ``key``, or None."""
        return self._manifests.get(key)

    def has_object(self, key: int) -> bool:
        """Whether every chunk of ``key`` is present."""
        manifest = self._manifests.get(key)
        if manifest is None:
            return False
        return len(self._chunks[key]) == manifest.n_chunks

    def missing_chunks(self, key: int) -> List[int]:
        """Chunk indices of ``key`` not yet held (all, for an unknown key)."""
        manifest = self._manifests.get(key)
        if manifest is None:
            return []
        held = self._chunks[key]
        return [i for i in range(manifest.n_chunks) if i not in held]

    def get_chunk(self, key: int, index: int) -> Optional[bytes]:
        """One stored chunk, or None."""
        return self._chunks.get(key, {}).get(index)

    def get_object(self, key: int) -> bytes:
        """The full verified object; raises :class:`IntegrityError` if
        incomplete or unknown."""
        manifest = self._manifests.get(key)
        if manifest is None:
            raise IntegrityError(
                f"store {self.node_id}: object {key} is not held"
            )
        return reassemble(manifest, self._chunks[key])

    def complete_keys(self) -> List[int]:
        """Keys of every fully held object (the flood-servable set)."""
        return [k for k in self._manifests if self.has_object(k)]

    @property
    def n_objects(self) -> int:
        """Number of fully held objects."""
        return len(self.complete_keys())

    def __contains__(self, key: int) -> bool:
        return self.has_object(key)

    def __iter__(self) -> Iterator[int]:
        return iter(self.complete_keys())

    def __len__(self) -> int:
        return self.n_objects
