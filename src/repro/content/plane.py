"""Simulation-side content plane: placement, read-repair, healing.

A :class:`ContentPlane` rides on a :class:`~repro.sim.churn.ChurnSimulation`
(attach it via the simulation's ``content`` field).  At build time it
places every object as ``k`` replicas over the freshly built overlay; from
then on it only *reacts*:

* churn departures keep a holder's disk intact (the node returns with its
  replicas), so they silently lower the *live* replica count;
* injected crashes (:meth:`on_crash`) wipe the victims' stores — disk
  loss, the regime where objects can actually die;
* rejoins (:meth:`on_join`) rebalance: a node returning after disk loss
  gets its placed keys pushed back from the lowest-id live holder, and
  the next heal sweep's placed-first trim preference converges holders
  back to the pure placement;
* fetches locate the nearest live holder by BFS hops and, when
  ``read_repair`` is on, re-push the object until ``k`` live replicas
  exist again;
* a background healing tick sweeps every object on ``heal_interval`` and
  restores (or trims to) exactly ``k`` live replicas whenever at least one
  live copy survives.

Determinism: placement draws only from per-object derived streams
(:func:`repro.content.placement.place_content`); repair and healing pick
targets by a fixed preference order (the serving holder's overlay
neighbors, then ascending node ids) and consume **no RNG at all**; fetch
probes draw from the simulation's dedicated content child stream.  The
churn trajectory is therefore bit-identical with or without a content
plane attached, and with observability on or off
(``self.stats`` is the authoritative accounting; ``content.*`` metrics
mirror it when a session is active).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.content.manifest import ContentObject
from repro.content.placement import ContentPlacement, place_content
from repro.content.store import ContentStore
from repro.obs import runtime as _obs
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.churn import ChurnSimulation


@dataclass(frozen=True)
class ContentConfig:
    """Content-plane policy knobs.

    ``fetch_ttl`` bounds the BFS radius a fetch searches (hops, matching
    the flooding TTLs elsewhere); ``fetch_probes`` issues that many seeded
    fetches per churn snapshot so availability is measured end to end, not
    just counted from the holder table.
    """

    k: int = 3
    heal_interval: float = 10.0
    heal_enabled: bool = True
    read_repair: bool = True
    fetch_probes: int = 0
    fetch_ttl: int = 6
    #: Placement stream seed (object streams derive from it per key).
    placement_seed: int = 0
    #: Push a rejoining node's placed-but-missing keys back on join.
    rebalance_on_join: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        check_positive("heal_interval", self.heal_interval)
        if self.fetch_probes < 0:
            raise ValueError("fetch_probes must be >= 0")
        if self.fetch_ttl < 1:
            raise ValueError("fetch_ttl must be >= 1")


@dataclass(frozen=True)
class DurabilitySample:
    """Replica health at one snapshot instant."""

    time: float
    availability: float
    mean_live_replicas: float
    n_degraded: int
    n_unavailable: int
    n_lost: int
    fetch_success: float = float("nan")


@dataclass(frozen=True)
class DurabilityReport:
    """End-of-run durability summary (the Table-2-style traffic ledger)."""

    n_objects: int
    k: int
    availability: float
    min_availability: float
    mean_live_replicas: float
    objects_lost: int
    objects_degraded: int
    heal_ticks: int
    heal_pushes: int
    heal_bytes: int
    heal_trims: int
    repair_pushes: int
    repair_bytes: int
    fetch_requests: int
    fetch_hits: int
    bytes_placed: int
    rebalance_pushes: int = 0
    rebalance_bytes: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON form for CLI/bench reports."""
        return {
            "n_objects": self.n_objects,
            "k": self.k,
            "availability": self.availability,
            "min_availability": self.min_availability,
            "mean_live_replicas": self.mean_live_replicas,
            "objects_lost": self.objects_lost,
            "objects_degraded": self.objects_degraded,
            "heal_ticks": self.heal_ticks,
            "heal_pushes": self.heal_pushes,
            "heal_bytes": self.heal_bytes,
            "heal_trims": self.heal_trims,
            "repair_pushes": self.repair_pushes,
            "repair_bytes": self.repair_bytes,
            "fetch_requests": self.fetch_requests,
            "fetch_hits": self.fetch_hits,
            "bytes_placed": self.bytes_placed,
            "rebalance_pushes": self.rebalance_pushes,
            "rebalance_bytes": self.rebalance_bytes,
        }


class ContentPlane:
    """Replica lifecycle manager for a churned overlay.

    Construct with the object corpus and a config, assign to
    ``ChurnSimulation.content``, then ``run()`` drives everything:
    placement after the initial build, store wipes on crashes, healing
    ticks on the simulation's event loop, and a durability sample per
    churn snapshot.
    """

    def __init__(self, objects: Sequence[ContentObject],
                 config: Optional[ContentConfig] = None):
        if not objects:
            raise ValueError("content plane needs at least one object")
        self.config = config if config is not None else ContentConfig()
        self.objects: Dict[int, ContentObject] = {o.key: o for o in objects}
        if len(self.objects) != len(objects):
            raise ValueError("object keys must be distinct")
        self.placement: Optional[ContentPlacement] = None
        self.stores: List[ContentStore] = []
        #: ``key -> node ids holding a complete copy`` (online or not).
        self._holders: Dict[int, Set[int]] = {}
        self._lost: Set[int] = set()
        self.samples: List[DurabilitySample] = []
        #: Authoritative accounting — identical with obs on or off.
        self.stats: Dict[str, int] = {
            "objects_placed": 0, "replicas_placed": 0, "bytes_placed": 0,
            "crash_wipes": 0, "replicas_wiped": 0,
            "fetch.requests": 0, "fetch.hits": 0, "fetch.failures": 0,
            "repair.pushes": 0, "repair.bytes": 0,
            "rebalance.pushes": 0, "rebalance.bytes": 0,
            "heal.ticks": 0, "heal.pushes": 0, "heal.bytes": 0,
            "heal.trims": 0, "objects_lost": 0,
        }
        self._churn: Optional["ChurnSimulation"] = None

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by ChurnSimulation)
    # ------------------------------------------------------------------

    def start(self, churn: "ChurnSimulation") -> None:
        """Place the corpus over the freshly built overlay and arm healing."""
        self._churn = churn
        n = churn.builder.n_nodes
        self.stores = [ContentStore(node_id=i) for i in range(n)]
        graph = churn.builder.adj.freeze()
        self.placement = place_content(
            graph, list(self.objects), k=self.config.k,
            seed=self.config.placement_seed,
        )
        for key, obj in self.objects.items():
            self._holders[key] = set()
            for node in self.placement.replicas(key):
                self._store(node, obj)
                self.stats["replicas_placed"] += 1
                self.stats["bytes_placed"] += obj.size
            self.stats["objects_placed"] += 1
        _obs.count("content.objects_placed", self.stats["objects_placed"])
        _obs.count("content.replicas_placed", self.stats["replicas_placed"])
        _obs.count("content.bytes_placed", self.stats["bytes_placed"])
        if self.config.heal_enabled:
            churn._sim.schedule(
                self.config.heal_interval, self._heal_tick, label="heal"
            )

    def on_crash(self, victims: Sequence[int]) -> None:
        """Disk loss: wipe every victim's store and holder entries."""
        for v in victims:
            v = int(v)
            store = self.stores[v]
            wiped = 0
            for key in list(store):
                self._holders[key].discard(v)
                wiped += 1
            store.wipe()
            if wiped:
                self.stats["crash_wipes"] += 1
                self.stats["replicas_wiped"] += wiped
                _obs.count("content.crash_wipes")
                _obs.count("content.replicas_wiped", wiped)

    def on_join(self, node: int) -> int:
        """Rebalance on rejoin: restore ``node``'s placed-but-missing keys.

        Placement is pure and never moves, so a rejoining owner (or
        placed copy) should converge back to holding its keys.  This hook
        pushes each such key from the lowest-id live holder the moment
        the node rejoins; the resulting surplus is trimmed by the next
        heal sweep, whose placed-first keep preference drops the
        opportunistic copy — "reclaim" is just that preference
        converging.  A churn departure keeps the disk, so rejoining with
        copies intact moves nothing; only post-crash rejoins pay pushes.
        Returns the number of pushes charged.
        """
        if not self.config.rebalance_on_join or self.placement is None:
            return 0
        node = int(node)
        pushed = 0
        for key in self.placement.keys_placed_on(node):
            if node in self._holders[key]:
                continue  # disk survived (churn departure); nothing to move
            live = self._live_holders(key)
            if not live:
                continue  # no live source; heal accounts the loss
            obj = self.objects[key]
            self._store(node, obj)
            pushed += 1
            self.stats["rebalance.pushes"] += 1
            self.stats["rebalance.bytes"] += obj.size
            _obs.count("content.rebalance.pushes")
            _obs.count("content.rebalance.bytes", obj.size)
            _obs.event(
                "content.rebalance", key=key, source=min(live),
                target=node, size=obj.size,
            )
        return pushed

    def on_snapshot(self, t: float) -> None:
        """Record a durability sample (and run any configured fetch probes)."""
        fetch_success = self._fetch_probes()
        avail, mean_live, degraded, unavailable, lost = self._census()
        self.samples.append(DurabilitySample(
            time=t, availability=avail, mean_live_replicas=mean_live,
            n_degraded=degraded, n_unavailable=unavailable, n_lost=lost,
            fetch_success=fetch_success,
        ))
        _obs.record("content.replicas_live", t, mean_live)
        _obs.record("content.availability_ts", t, avail)
        _obs.gauge("content.availability", avail)
        _obs.gauge("content.objects_degraded", degraded)
        _obs.gauge("content.objects_lost", lost)
        _obs.event(
            "content.snapshot", t=t, availability=avail,
            mean_live=mean_live, degraded=degraded, lost=lost,
        )

    # ------------------------------------------------------------------
    # Fetch with read-repair
    # ------------------------------------------------------------------

    def fetch(self, source: int, key: int) -> Optional[bytes]:
        """Fetch ``key`` from the live holder nearest to ``source``.

        Returns the verified object bytes, or None when no live holder is
        reachable within ``fetch_ttl`` hops on the online overlay.  A hit
        records BFS hop count under ``content.fetch_s`` (virtual "seconds"
        — the live plane records wall time under the same name) and, with
        ``read_repair`` on, restores the live replica count to ``k``.
        """
        self.stats["fetch.requests"] += 1
        _obs.count("content.fetch.requests")
        serving, hops = self._locate(source, key)
        if serving is None:
            self.stats["fetch.failures"] += 1
            _obs.count("content.fetch.failures")
            _obs.event("content.fetch", key=key, source=source, hit=False)
            return None
        data = self.stores[serving].get_object(key)
        self.stats["fetch.hits"] += 1
        _obs.count("content.fetch.hits")
        # True hop count: source-local hits land in the histogram's
        # dedicated zero bucket instead of masquerading as 1-hop fetches.
        _obs.quantile("content.fetch_s", float(hops))
        _obs.event(
            "content.fetch", key=key, source=source, hit=True,
            serving=serving, hops=hops,
        )
        if self.config.read_repair:
            pushed = self._replicate(key, serving, kind="repair")
            if pushed:
                _obs.count("content.repair.objects")
        return data

    def _locate(self, source: int, key: int) -> Tuple[Optional[int], int]:
        """Nearest live holder of ``key`` by BFS hops from ``source``.

        Ties at equal distance break toward the lowest node id.  Returns
        ``(None, -1)`` when nothing is reachable within ``fetch_ttl``.
        """
        churn = self._churn
        online = churn.online
        if not online[source]:
            return None, -1
        live = self._live_holders(key)
        if source in live:
            return source, 0
        adj = churn.builder.adj
        seen = {source}
        frontier = [source]
        for hops in range(1, self.config.fetch_ttl + 1):
            nxt: List[int] = []
            found: List[int] = []
            for u in frontier:
                for v in sorted(adj.neighbors(u)):
                    if v in seen or not online[v]:
                        continue
                    seen.add(v)
                    nxt.append(v)
                    if v in live:
                        found.append(v)
            if found:
                return min(found), hops
            if not nxt:
                break
            frontier = nxt
        return None, -1

    # ------------------------------------------------------------------
    # Healing
    # ------------------------------------------------------------------

    def heal(self) -> int:
        """One healing sweep: restore (or trim to) ``k`` live replicas.

        Objects with zero live holders are skipped — offline copies may
        churn back; only an empty holder set is a permanent loss, counted
        once under ``objects_lost``.  Returns the number of pushes made.
        """
        self.stats["heal.ticks"] += 1
        _obs.count("content.heal.ticks")
        pushes = 0
        k = min(self.config.k, int(np.count_nonzero(self._churn.online)))
        for key in self.placement.object_keys:
            holders = self._holders[key]
            if not holders:
                if key not in self._lost:
                    self._lost.add(key)
                    self.stats["objects_lost"] += 1
                    _obs.count("content.heal.objects_lost")
                    _obs.event("content.lost", key=key)
                continue
            live = self._live_holders(key)
            if not live:
                continue  # only offline copies; nothing to push from yet
            if len(live) < k:
                pushes += self._replicate(key, min(live), kind="heal")
            elif len(live) > k:
                self._trim(key, live, k)
        return pushes

    def _heal_tick(self, sim) -> None:
        self.heal()
        sim.schedule(self.config.heal_interval, self._heal_tick, label="heal")

    def _replicate(self, key: int, serving: int, kind: str) -> int:
        """Push ``key`` from ``serving`` to new targets until ``k`` live.

        Target preference is deterministic and RNG-free: the serving
        holder's overlay neighbors in ascending id order, then every other
        node ascending.  Only online non-holders qualify.
        """
        churn = self._churn
        online = churn.online
        obj = self.objects[key]
        holders = self._holders[key]
        live = self._live_holders(key)
        want = min(self.config.k, int(np.count_nonzero(online)))
        pushed = 0
        for target in self._target_order(serving):
            if len(live) >= want:
                break
            if target in holders or not online[target]:
                continue
            self._store(target, obj)
            live.add(target)
            pushed += 1
            self.stats[f"{kind}.pushes"] += 1
            self.stats[f"{kind}.bytes"] += obj.size
            _obs.count(f"content.{kind}.pushes")
            _obs.count(f"content.{kind}.bytes", obj.size)
            _obs.event(
                f"content.{kind}", key=key, source=serving, target=target,
                size=obj.size,
            )
        return pushed

    def _trim(self, key: int, live: Set[int], k: int) -> None:
        """Drop surplus live replicas down to ``k``.

        Keeps placed replicas over opportunistic ones, lower ids over
        higher — the same preference order placement produced, so a
        trimmed object converges back to its original holders when they
        are alive.
        """
        placed = set(self.placement.replicas(key))
        keep = sorted(live, key=lambda n: (n not in placed, n))[:k]
        for node in sorted(live - set(keep)):
            self.stores[node].drop_object(key)
            self._holders[key].discard(node)
            self.stats["heal.trims"] += 1
            _obs.count("content.heal.trims")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def durability_report(self) -> DurabilityReport:
        """Summarize the run: final census, extremes, traffic ledger."""
        avail, mean_live, degraded, _, lost = self._census()
        min_avail = min(
            (s.availability for s in self.samples), default=avail
        )
        s = self.stats
        return DurabilityReport(
            n_objects=len(self.objects), k=self.config.k,
            availability=avail, min_availability=min(min_avail, avail),
            mean_live_replicas=mean_live,
            objects_lost=lost, objects_degraded=degraded,
            heal_ticks=s["heal.ticks"], heal_pushes=s["heal.pushes"],
            heal_bytes=s["heal.bytes"], heal_trims=s["heal.trims"],
            repair_pushes=s["repair.pushes"], repair_bytes=s["repair.bytes"],
            fetch_requests=s["fetch.requests"], fetch_hits=s["fetch.hits"],
            bytes_placed=s["bytes_placed"],
            rebalance_pushes=s["rebalance.pushes"],
            rebalance_bytes=s["rebalance.bytes"],
        )

    def live_replica_count(self, key: int) -> int:
        """Number of online nodes currently holding ``key``."""
        return len(self._live_holders(key))

    def holders(self, key: int) -> Set[int]:
        """All nodes (online or not) holding a complete copy of ``key``."""
        return set(self._holders[key])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _store(self, node: int, obj: ContentObject) -> None:
        self.stores[node].put_object(obj.manifest, obj.chunks)
        self._holders[obj.key].add(node)

    def _live_holders(self, key: int) -> Set[int]:
        online = self._churn.online
        return {h for h in self._holders[key] if online[h]}

    def _target_order(self, serving: int):
        """Deterministic push-target preference (no RNG)."""
        adj = self._churn.builder.adj
        nbrs = sorted(adj.neighbors(serving))
        seen = set(nbrs)
        seen.add(serving)
        yield from nbrs
        for u in range(self._churn.builder.n_nodes):
            if u not in seen:
                yield u

    def _census(self) -> Tuple[float, float, int, int, int]:
        """(availability, mean live replicas, degraded, unavailable, lost)."""
        n = len(self.objects)
        live_total = 0
        available = degraded = unavailable = lost = 0
        for key in self.objects:
            holders = self._holders[key]
            live = len(self._live_holders(key))
            live_total += live
            if live > 0:
                available += 1
                if live < self.config.k:
                    degraded += 1
            elif holders:
                unavailable += 1
            else:
                lost += 1
        return available / n, live_total / n, degraded, unavailable, lost

    def _fetch_probes(self) -> float:
        """Seeded end-to-end fetch probes (content child stream only)."""
        cfg = self.config
        if cfg.fetch_probes == 0:
            return float("nan")
        rng = self._churn._content_rng
        online_ids = np.flatnonzero(self._churn.online)
        if online_ids.size == 0:
            return 0.0
        keys = list(self.objects)
        hits = 0
        for _ in range(cfg.fetch_probes):
            source = int(online_ids[rng.integers(0, online_ids.size)])
            key = keys[int(rng.integers(0, len(keys)))]
            if self.fetch(source, key) is not None:
                hits += 1
        return hits / cfg.fetch_probes
