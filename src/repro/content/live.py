"""Live content plane: real chunk transfers over the framed wire.

:class:`LiveContent` rides on a running
:class:`~repro.node.boot.LiveOverlay`.  It seeds every peer's
:class:`~repro.content.store.ContentStore` from a
:class:`~repro.content.placement.ContentPlacement`, then serves the same
lifecycle the simulation plane models — fetch with read-repair, and a
healing pass restoring ``k`` live replicas — except every byte actually
crosses a TCP connection as ``ChunkRequest``/``ManifestData``/``ChunkData``
frames (descriptors 0x30–0x32) through each peer's stream framer.

A fetch first *locates* a holder with a genuine v0.4 Query flood
(:meth:`~repro.node.peer.PeerNode.begin_query` + overlay settle), then
transfers from the nearest hit over a dedicated connection; wall-clock
transfer time lands in the ``content.fetch_s`` quantile — the same metric
name the sim plane fills with virtual hop counts.  Push targets follow
the sim plane's RNG-free preference order (the serving peer's neighbors
ascending, then all ids ascending), so sim and live agree on replica-count
accounting for the same failure shape.

Liveness here is process truth: a peer that was stopped (killed) is down,
and — matching the simulation's crash-is-disk-loss semantics — its copies
do not count.  ``self.stats`` uses the sim plane's key catalogue;
per-event ``content.*`` counters land on the involved peers' private
registries so :meth:`LiveOverlay.merged_registry` folds them up exactly
like every other ``node.*`` metric.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro.content.manifest import ContentObject, Manifest, reassemble
from repro.content.placement import ContentPlacement
from repro.content.plane import (
    ContentConfig,
    DurabilityReport,
    DurabilitySample,
)
from repro.content.store import ContentStore
from repro.node.boot import LiveOverlay
from repro.node.framer import StreamFramer
from repro.node.peer import PeerNode
from repro.protocol.messages import (
    WHOLE_OBJECT,
    ChunkData,
    ChunkRequest,
    ManifestData,
)

_READ_SIZE = 65536


def manifest_message(descriptor_id: bytes, manifest: Manifest) -> ManifestData:
    """Wire form of a manifest (the 0x31 frame)."""
    return ManifestData(
        descriptor_id, key=manifest.key, size=manifest.size,
        chunk_size=manifest.chunk_size, chunk_digests=manifest.chunk_digests,
    )


def manifest_from_message(md: ManifestData) -> Manifest:
    """Typed manifest of a decoded 0x31 frame."""
    return Manifest(key=md.key, size=md.size, chunk_size=md.chunk_size,
                    chunk_digests=md.chunk_digests)


async def fetch_object(
    node: PeerNode, host: str, port: int, key: int, timeout: float = 5.0,
) -> Optional[Tuple[Manifest, Dict[int, bytes]]]:
    """Pull a whole object from a holder over a dedicated connection.

    Sends one ``ChunkRequest`` with the :data:`WHOLE_OBJECT` sentinel and
    collects the ``ManifestData`` + ``ChunkData`` reply stream through a
    private framer (the holder's hello Ping is ignored).  Returns
    ``(manifest, chunks)`` or None on timeout/miss; chunk verification is
    the caller's job (:func:`repro.content.manifest.reassemble`).
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except (ConnectionError, OSError):
        return None
    framer = StreamFramer(max_payload=node.config.max_payload)
    manifest: Optional[Manifest] = None
    chunks: Dict[int, bytes] = {}
    try:
        writer.write(ChunkRequest(node._next_guid(), key=key,
                                  chunk_index=WHOLE_OBJECT).encode())
        await writer.drain()
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                data = await asyncio.wait_for(reader.read(_READ_SIZE),
                                              remaining)
            except asyncio.TimeoutError:
                return None
            if not data:
                return None
            for msg in framer.feed(data):
                if isinstance(msg, ManifestData) and msg.key == key:
                    manifest = manifest_from_message(msg)
                elif isinstance(msg, ChunkData) and msg.key == key:
                    chunks[msg.chunk_index] = msg.data
            if framer.desynced:
                return None
            if manifest is not None and len(chunks) >= manifest.n_chunks:
                return manifest, chunks
    except (ConnectionError, OSError):
        return None
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass


async def push_object(
    pusher: PeerNode, host: str, port: int, manifest: Manifest,
    chunks: Sequence[bytes], timeout: float = 5.0,
) -> Optional[int]:
    """Push a whole object to a peer; chunk bytes sent, or None on error.

    Success and byte count are distinct: an empty object is one manifest
    with zero chunks, so a successful push legitimately returns 0 —
    callers must test ``is not None``, never truthiness, or they will
    re-push empty objects forever.

    The receiving peer's normal read loop ingests the frames
    (``node.rx.manifest``/``node.rx.chunk_data``), verifies every chunk
    against the manifest, and advertises the key once complete — the
    receiver needs no special state beyond its content store.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except (ConnectionError, OSError):
        return None
    try:
        did = pusher._next_guid()
        writer.write(manifest_message(did, manifest).encode())
        sent = 0
        for i, chunk in enumerate(chunks):
            writer.write(ChunkData(did, key=manifest.key, chunk_index=i,
                                   data=chunk).encode())
            sent += len(chunk)
        await asyncio.wait_for(writer.drain(), timeout)
        return sent
    except (asyncio.TimeoutError, ConnectionError, OSError):
        return None
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass


class LiveContent:
    """Replica lifecycle over a live overlay (see module docstring)."""

    def __init__(
        self,
        overlay: LiveOverlay,
        objects: Sequence[ContentObject],
        placement: ContentPlacement,
        config: Optional[ContentConfig] = None,
    ):
        if placement.n_nodes != len(overlay.nodes):
            raise ValueError("placement and overlay node counts disagree")
        self.overlay = overlay
        self.placement = placement
        self.config = config if config is not None else ContentConfig(
            k=placement.k,
        )
        self.objects: Dict[int, ContentObject] = {o.key: o for o in objects}
        missing = [k for k in placement.object_keys if k not in self.objects]
        if missing:
            raise ValueError(f"placement covers unknown keys: {missing[:3]}")
        #: Same key catalogue as the sim plane's ``ContentPlane.stats``.
        self.stats: Dict[str, int] = {
            "objects_placed": 0, "replicas_placed": 0, "bytes_placed": 0,
            "fetch.requests": 0, "fetch.hits": 0, "fetch.failures": 0,
            "repair.pushes": 0, "repair.bytes": 0,
            "rebalance.pushes": 0, "rebalance.bytes": 0,
            "heal.ticks": 0, "heal.pushes": 0, "heal.bytes": 0,
            "heal.trims": 0, "objects_lost": 0,
        }
        self._lost: Set[int] = set()
        self.samples: List[DurabilitySample] = []
        self._heal_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def seed_stores(self) -> None:
        """Give every peer a content store and load its placed replicas.

        Local (no wire traffic) — this is t=0 state, the placement the
        overlay would have arrived at by prior transfers.  Keys land in
        each peer's ``store`` set so Query floods can locate them.
        """
        for node in self.overlay.nodes:
            if node.content is None:
                node.content = ContentStore(node_id=node.node_id)
        for key in self.placement.object_keys:
            obj = self.objects[key]
            for nid in self.placement.replicas(key):
                node = self.overlay.nodes[nid]
                node.content.put_object(obj.manifest, obj.chunks)
                node.store.add(key)
                self.stats["replicas_placed"] += 1
                self.stats["bytes_placed"] += obj.size
            self.stats["objects_placed"] += 1

    # ------------------------------------------------------------------
    # Holder census
    # ------------------------------------------------------------------

    def live_holders(self, key: int) -> List[int]:
        """Running peers holding a complete copy of ``key`` (ascending)."""
        return [
            n.node_id for n in self.overlay.nodes
            if n.running and n.content is not None
            and n.content.has_object(key)
        ]

    def live_replica_count(self, key: int) -> int:
        """Number of running peers holding ``key`` (the sim-parity figure)."""
        return len(self.live_holders(key))

    def _replica_target(self) -> int:
        alive = sum(1 for n in self.overlay.nodes if n.running)
        return min(self.config.k, alive)

    # ------------------------------------------------------------------
    # Fetch with read-repair
    # ------------------------------------------------------------------

    async def fetch(self, source: int, key: int,
                    ttl: Optional[int] = None) -> Optional[bytes]:
        """Locate ``key`` by Query flood, transfer it, read-repair.

        Returns the verified bytes or None.  Wall transfer time lands in
        the requester's ``content.fetch_s`` quantile; counters use the
        sim plane's ``content.fetch.*`` names on the requester's registry.
        """
        node = self.overlay.nodes[source]
        m = node.metrics
        self.stats["fetch.requests"] += 1
        m.counter("content.fetch.requests").inc()
        data: Optional[bytes] = None
        serving = None
        if node.content is not None and node.content.has_object(key):
            serving = source
            data = node.content.get_object(key)
        else:
            state = node.begin_query(key, ttl=ttl)
            await self.overlay.settle()
            node.finish_query(state)
            if state.hits:
                best = min(state.hits, key=lambda h: (h.hops, h.server))
                server_node = self.overlay.nodes[best.server]
                t0 = time.perf_counter()
                pulled = await fetch_object(
                    node, server_node.host, server_node.port, key,
                )
                if pulled is not None:
                    manifest, chunks = pulled
                    try:
                        data = reassemble(manifest, chunks)
                    except ValueError:
                        data = None
                    if data is not None:
                        # The requester does NOT cache a replica — matching
                        # the sim plane, replica counts change only through
                        # read-repair and healing pushes.
                        serving = best.server
                        m.quantile("content.fetch_s").observe(
                            time.perf_counter() - t0
                        )
        if data is None:
            self.stats["fetch.failures"] += 1
            m.counter("content.fetch.failures").inc()
            return None
        self.stats["fetch.hits"] += 1
        m.counter("content.fetch.hits").inc()
        if self.config.read_repair:
            await self._replicate(key, serving, kind="repair")
        return data

    # ------------------------------------------------------------------
    # Rebalance on join
    # ------------------------------------------------------------------

    async def on_join(self, node_id: int) -> int:
        """Rebalance a rejoined peer: push its placed-but-missing keys back.

        The live twin of :meth:`ContentPlane.on_join` — same worklist
        (``placement.keys_placed_on``), same source preference (lowest-id
        live holder), same accounting (``rebalance.pushes``/``.bytes``),
        so sim and live charge identical rebalance pushes for the same
        churn shape; only here the bytes actually cross TCP.  The surplus
        replica is trimmed by the next heal sweep's placed-first keep
        preference.  Returns the number of pushes charged.
        """
        if not self.config.rebalance_on_join:
            return 0
        node = self.overlay.nodes[node_id]
        if not node.running:
            return 0
        if node.content is None:
            node.content = ContentStore(node_id=node_id)
        pushed = 0
        for key in self.placement.keys_placed_on(node_id):
            if node.content.has_object(key):
                continue
            live = [h for h in self.live_holders(key) if h != node_id]
            if not live:
                continue  # no live source; heal accounts the loss
            server_node = self.overlay.nodes[live[0]]
            store = server_node.content
            manifest = store.manifest(key)
            chunks = [store.get_chunk(key, i)
                      for i in range(manifest.n_chunks)]
            sent = await push_object(server_node, node.host, node.port,
                                     manifest, chunks)
            if sent is None:
                continue
            await self.overlay.settle()
            if not node.content.has_object(key):
                continue  # push raced a teardown; leave it to healing
            pushed += 1
            self.stats["rebalance.pushes"] += 1
            self.stats["rebalance.bytes"] += sent
            sm = server_node.metrics
            sm.counter("content.rebalance.pushes").inc()
            sm.counter("content.rebalance.bytes").inc(sent)
        return pushed

    # ------------------------------------------------------------------
    # Healing
    # ------------------------------------------------------------------

    async def heal(self) -> int:
        """One healing sweep over every placed object; returns pushes.

        Matches the sim plane: ``< k`` live replicas are restored by
        pushes from the lowest-id live holder, ``> k`` trimmed back down
        (placed holders preferred, then ascending id); an object with no
        live holder is lost — a stopped peer is a crash, its copies are
        gone with it.
        """
        self.stats["heal.ticks"] += 1
        _obs.count("content.heal.ticks")
        pushes = 0
        k = self._replica_target()
        for key in self.placement.object_keys:
            live = self.live_holders(key)
            if not live:
                if key not in self._lost:
                    self._lost.add(key)
                    self.stats["objects_lost"] += 1
                    _obs.count("content.heal.objects_lost")
                continue
            if len(live) < k:
                pushes += await self._replicate(key, live[0], kind="heal")
            elif len(live) > k:
                self._trim(key, live, k)
        return pushes

    def start_healing(self, interval: Optional[float] = None) -> None:
        """Run :meth:`heal` forever on ``interval`` (a background task)."""
        if self._heal_task is not None:
            return
        if interval is None:
            interval = self.config.heal_interval

        async def loop():
            while True:
                await asyncio.sleep(interval)
                await self.heal()

        self._heal_task = asyncio.ensure_future(loop())

    async def stop_healing(self) -> None:
        """Cancel the background healing task (if any)."""
        if self._heal_task is None:
            return
        self._heal_task.cancel()
        try:
            await self._heal_task
        except asyncio.CancelledError:
            pass
        self._heal_task = None

    # ------------------------------------------------------------------
    # Durability reporting (the sim plane's census, on process truth)
    # ------------------------------------------------------------------

    def census(self) -> Tuple[float, float, int, int, int]:
        """(availability, mean live replicas, degraded, unavailable, lost).

        Liveness is process truth, and a stopped peer is a crash whose
        copies are gone — so unlike the sim there are no dark offline
        copies: every object with zero live holders counts as lost.
        """
        n = len(self.objects)
        live_total = 0
        available = degraded = lost = 0
        for key in self.objects:
            live = self.live_replica_count(key)
            live_total += live
            if live > 0:
                available += 1
                if live < self.config.k:
                    degraded += 1
            else:
                lost += 1
        return available / n, live_total / n, degraded, 0, lost

    def record_sample(self, t: float) -> DurabilitySample:
        """Census the plane at virtual time ``t`` and keep the sample."""
        avail, mean_live, degraded, unavailable, lost = self.census()
        sample = DurabilitySample(
            time=t, availability=avail, mean_live_replicas=mean_live,
            n_degraded=degraded, n_unavailable=unavailable, n_lost=lost,
        )
        self.samples.append(sample)
        return sample

    def durability_report(self) -> DurabilityReport:
        """Final census + traffic ledger, shaped like the sim plane's."""
        avail, mean_live, degraded, _, lost = self.census()
        min_avail = min(
            (s.availability for s in self.samples), default=avail
        )
        s = self.stats
        return DurabilityReport(
            n_objects=len(self.objects), k=self.config.k,
            availability=avail, min_availability=min(min_avail, avail),
            mean_live_replicas=mean_live,
            objects_lost=lost, objects_degraded=degraded,
            heal_ticks=s["heal.ticks"], heal_pushes=s["heal.pushes"],
            heal_bytes=s["heal.bytes"], heal_trims=s["heal.trims"],
            repair_pushes=s["repair.pushes"], repair_bytes=s["repair.bytes"],
            fetch_requests=s["fetch.requests"], fetch_hits=s["fetch.hits"],
            bytes_placed=s["bytes_placed"],
            rebalance_pushes=s["rebalance.pushes"],
            rebalance_bytes=s["rebalance.bytes"],
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _replicate(self, key: int, serving: int, kind: str) -> int:
        """Push ``key`` from ``serving`` until ``k`` running peers hold it.

        The sim plane's preference order, verbatim: the serving peer's
        current neighbors ascending, then every other id ascending.
        """
        server_node = self.overlay.nodes[serving]
        store = server_node.content
        if store is None or not store.has_object(key):
            return 0
        manifest = store.manifest(key)
        chunks = [store.get_chunk(key, i) for i in range(manifest.n_chunks)]
        holders = set(self.live_holders(key))
        want = self._replica_target()
        pushed = 0
        for target in self._target_order(server_node):
            if len(holders) >= want:
                break
            node = self.overlay.nodes[target]
            if target in holders or not node.running:
                continue
            if node.content is None:
                node.content = ContentStore(node_id=target)
            sent = await push_object(server_node, node.host, node.port,
                                     manifest, chunks)
            if sent is None:
                continue  # transfer failed (0 is a successful empty push)
            await self.overlay.settle()
            if not node.content.has_object(key):
                continue  # push raced a teardown; try the next target
            holders.add(target)
            pushed += 1
            self.stats[f"{kind}.pushes"] += 1
            self.stats[f"{kind}.bytes"] += sent
            sm = server_node.metrics
            sm.counter(f"content.{kind}.pushes").inc()
            sm.counter(f"content.{kind}.bytes").inc(sent)
        return pushed

    def _trim(self, key: int, live: List[int], k: int) -> None:
        placed = set(self.placement.replicas(key))
        keep = sorted(live, key=lambda n: (n not in placed, n))[:k]
        for nid in sorted(set(live) - set(keep)):
            node = self.overlay.nodes[nid]
            node.content.drop_object(key)
            node.store.discard(key)
            self.stats["heal.trims"] += 1
            node.metrics.counter("content.heal.trims").inc()

    def _target_order(self, server_node: PeerNode):
        nbrs = sorted(server_node.neighbors)
        seen = set(nbrs)
        seen.add(server_node.node_id)
        yield from nbrs
        for u in range(len(self.overlay.nodes)):
            if u not in seen:
                yield u
