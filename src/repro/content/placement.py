"""k-replica placement over the overlay: owner + neighbor-biased copies.

The owner of a key is content-addressed — a splitmix64 hash of the key
modulo the population — so any node can compute it without coordination.
The remaining ``k - 1`` replicas are *neighbor-biased*: drawn first from
the owner's overlay neighborhood, then from its two-hop fringe, then
uniformly from the rest, each ring shuffled by a per-object child stream
(:func:`repro.util.rng.derive_seed`).  Placing near the owner keeps
re-replication traffic short-haul (the Biernacki flooding-cost argument)
at the price of correlated loss when a neighborhood dies at once — the
Guclu & Yuksel hub-loss stress the durability benchmarks measure.

Determinism: the same ``(graph, keys, k, seed)`` produces the same
replica map, object by object, regardless of placement order, because
every object derives its own stream from ``derive_seed(seed, key)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.topology.graph import OverlayGraph
from repro.util.hashing import splitmix64
from repro.util.rng import as_generator, derive_seed

#: Salt of the owner hash (distinct from every Bloom-filter family salt).
_OWNER_SALT = 0x0B1EC7


def owner_of(key: int, n_nodes: int) -> int:
    """Content-addressed owner of ``key`` in a population of ``n_nodes``."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return int(splitmix64(np.uint64(key), salt=_OWNER_SALT) % np.uint64(n_nodes))


@dataclass(frozen=True)
class ContentPlacement:
    """The replica map of a corpus: ``key -> (owner, replica_1, ...)``.

    ``replica_map[key][0]`` is always the owner; the tuple holds at most
    ``k`` distinct node ids.  Build with :func:`place_content`.
    """

    n_nodes: int
    k: int
    object_keys: Tuple[int, ...]
    replica_map: Dict[int, Tuple[int, ...]] = field(repr=False)

    @property
    def n_objects(self) -> int:
        """Number of placed objects."""
        return len(self.object_keys)

    def owner(self, key: int) -> int:
        """The content-addressed owner of ``key``."""
        return self.replica_map[key][0]

    def replicas(self, key: int) -> Tuple[int, ...]:
        """All holders of ``key`` in preference order (owner first)."""
        return self.replica_map[key]

    def keys_placed_on(self, node: int) -> Tuple[int, ...]:
        """Keys whose placed replica set includes ``node`` (corpus order).

        This is the rebalance-on-join worklist: when ``node`` rejoins
        after a disk-loss crash, these are the objects it should be
        holding again once the plane converges.
        """
        node = int(node)
        return tuple(
            k for k in self.object_keys if node in self.replica_map[k]
        )

    @property
    def mean_replicas(self) -> float:
        """Mean replicas per object (== min(k, n_nodes) by construction)."""
        if not self.object_keys:
            return 0.0
        return sum(len(v) for v in self.replica_map.values()) / self.n_objects

    @property
    def effective_replication_ratio(self) -> float:
        """The scalar ratio this placement realizes (bridge to the legacy
        rate-based model of :mod:`repro.search.replication`)."""
        return self.mean_replicas / self.n_nodes

    def neighbor_bias_fraction(self, graph: OverlayGraph) -> float:
        """Fraction of non-owner replicas adjacent to their owner in
        ``graph`` — a placement-policy health figure for reports."""
        near = total = 0
        for key in self.object_keys:
            owner, *rest = self.replica_map[key]
            nbrs = set(int(v) for v in graph.neighbors(owner))
            for r in rest:
                total += 1
                near += r in nbrs
        return near / total if total else 0.0

    def as_placement(self):
        """Bridge to the legacy :class:`~repro.search.replication.Placement`.

        Holder lists are sorted per object, exactly like
        :func:`~repro.search.replication.place_objects` emits them, so
        everything downstream of the scalar model — attenuated-Bloom
        construction, flood holder masks, the live overlay's store
        seeding — consumes real placements unchanged.
        """
        from repro.search.replication import Placement

        keys = np.asarray(self.object_keys, dtype=np.int64)
        counts = [len(self.replica_map[k]) for k in self.object_keys]
        indptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        holders = np.concatenate([
            np.sort(np.asarray(self.replica_map[k], dtype=np.int64))
            for k in self.object_keys
        ]) if self.object_keys else np.empty(0, dtype=np.int64)
        return Placement(
            n_nodes=self.n_nodes, object_keys=keys,
            replica_nodes=holders, replica_indptr=indptr,
        )


def _replica_preference(
    graph: OverlayGraph, owner: int, rng: np.random.Generator
) -> List[int]:
    """Candidate order for one object: 1-hop ring, 2-hop ring, the rest.

    Each ring is shuffled by the object's private stream; rings never
    mix, so the bias toward the owner's neighborhood is structural.
    """
    n = graph.n_nodes
    nbrs = graph.neighbors(owner)
    one_hop = set(int(v) for v in nbrs)
    two_hop: set = set()
    for v in nbrs:
        two_hop.update(int(w) for w in graph.neighbors(int(v)))
    two_hop -= one_hop
    two_hop.discard(owner)
    rest = [u for u in range(n)
            if u != owner and u not in one_hop and u not in two_hop]
    order: List[int] = []
    for ring in (sorted(one_hop), sorted(two_hop), rest):
        ring = list(ring)
        if len(ring) > 1:
            ring = [ring[i] for i in rng.permutation(len(ring))]
        order.extend(ring)
    return order


def place_content(
    graph: OverlayGraph,
    keys: Iterable[int],
    k: int = 3,
    seed: int = 0,
) -> ContentPlacement:
    """Place every key as owner + ``k - 1`` neighbor-biased replicas.

    Replica counts are ``min(k, n_nodes)``; keys must be distinct.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    keys = [int(x) for x in keys]
    if len(set(keys)) != len(keys):
        raise ValueError("object keys must be distinct")
    n = graph.n_nodes
    r = min(k, n)
    replica_map: Dict[int, Tuple[int, ...]] = {}
    for key in keys:
        owner = owner_of(key, n)
        rng = as_generator(derive_seed(seed, key))
        picks = [owner]
        for candidate in _replica_preference(graph, owner, rng):
            if len(picks) >= r:
                break
            picks.append(candidate)
        replica_map[key] = tuple(picks)
    return ContentPlacement(
        n_nodes=n, k=k, object_keys=tuple(keys), replica_map=replica_map,
    )
