"""Content & replication plane: what the overlay's hits actually serve.

The paper evaluates Makalu on query *hits*; this package makes those hits
stand for something durable.  Objects are chunked under a digest manifest
(:mod:`repro.content.manifest`), held in per-node stores
(:mod:`repro.content.store`), placed as ``k`` replicas — owner plus
``k - 1`` neighbor-biased copies — over the overlay
(:mod:`repro.content.placement`), and kept alive under churn and injected
faults by read-repair on fetch plus a background healing loop
(:mod:`repro.content.plane` for the simulation,
:mod:`repro.content.live` for the asyncio runtime).

Everything is deterministic under the repo's seeded RNG discipline: the
owner of a key is content-addressed (a splitmix64 hash), replica choices
draw from per-object child streams (:func:`repro.util.rng.derive_seed`),
and healing/repair target selection is preference-ordered with no RNG at
all — so attaching a content plane to a :class:`~repro.sim.churn.ChurnSimulation`
never perturbs the churn trajectory.
"""

from repro.content.manifest import (
    DEFAULT_CHUNK_SIZE,
    MANIFEST_SCHEMA_VERSION,
    ContentObject,
    IntegrityError,
    Manifest,
    chunk_object,
    generate_objects,
    reassemble,
)
from repro.content.placement import ContentPlacement, place_content
from repro.content.plane import ContentConfig, ContentPlane, DurabilityReport
from repro.content.store import ContentStore

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MANIFEST_SCHEMA_VERSION",
    "ContentConfig",
    "ContentObject",
    "ContentPlacement",
    "ContentPlane",
    "ContentStore",
    "DurabilityReport",
    "IntegrityError",
    "Manifest",
    "chunk_object",
    "generate_objects",
    "place_content",
    "reassemble",
]
