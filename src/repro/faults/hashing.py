"""Counter-based (stateless) randomness for fault injection.

Sequential RNG streams cannot give bit-identical fault decisions across
execution strategies: the scalar flood loop, the bit-parallel batch kernel
and the process-parallel runner all visit messages in different orders, so
any ``Generator`` threaded through them would hand different draws to the
same message.  Fault decisions here are instead *pure functions* of the
message's identity — ``(scenario seed, query key, hop, sender, receiver)``
— hashed through the splitmix64 finalizer.  Every execution strategy
evaluates the same function on the same coordinates and therefore drops
exactly the same messages (the EXPERIMENTS.md seed-derivation convention:
keyed per-query, never per-worker).

The mixer is the standard splitmix64 finalizer (Steele et al.), which
passes BigCrush as a counter-based generator; fault injection needs "no
visible correlation between nearby message coordinates", which it clears
by a wide margin.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U30 = np.uint64(30)
_U27 = np.uint64(27)
_U31 = np.uint64(31)

#: Largest representable threshold; a loss rate of 1.0 maps here, making
#: survival probability 2**-64 per message — indistinguishable from "all
#: messages lost" at any simulation scale.
_MAX_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _finalize(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over uint64 scalars/arrays (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _U30)) * _MIX1
        z = (z ^ (z >> _U27)) * _MIX2
        return z ^ (z >> _U31)


def _mix(acc, word) -> np.ndarray:
    """Fold ``word`` into accumulator ``acc`` (both uint64, broadcastable)."""
    with np.errstate(over="ignore"):
        return _finalize(acc ^ (word + _GOLDEN))


def _as_u64(value) -> np.ndarray:
    """Cast ints / int64 arrays to uint64 (two's-complement for negatives)."""
    return np.asarray(value).astype(np.uint64)


def message_hash(seed: int, query_keys, hop: int, senders, receivers) -> np.ndarray:
    """uint64 hash of each (query, sender -> receiver @ hop) message.

    ``senders``/``receivers`` are broadcast against ``query_keys``: with a
    scalar key the result matches the message arrays' shape; with a
    ``(nq,)`` key vector and ``(m,)`` message arrays it is the full
    ``(m, nq)`` matrix, element ``[j, q]`` equal to the scalar evaluation
    at ``(query_keys[q], senders[j], receivers[j])`` — that equality is
    what makes the batch kernel bit-identical to the scalar loop.
    """
    base = _mix(_finalize(_as_u64(seed) + _GOLDEN), _as_u64(hop))
    pair = _mix(_mix(base, _as_u64(senders)), _as_u64(receivers))
    qk = _as_u64(query_keys)
    if qk.ndim == 0:
        return _mix(pair, qk)
    return _mix(pair[..., None], qk[None, :])


def rate_threshold(rate: float) -> np.uint64:
    """The uint64 threshold below which a message hash means "dropped"."""
    if rate <= 0.0:
        return np.uint64(0)
    if rate >= 1.0:
        return _MAX_U64
    return np.uint64(int(rate * float(2**64)))


def drop_mask(
    rate: float, seed: int, query_keys, hop: int, senders, receivers
) -> np.ndarray:
    """Boolean drop decision per message (see :func:`message_hash`)."""
    return message_hash(seed, query_keys, hop, senders, receivers) < rate_threshold(rate)


def uniform01(seed: int, query_key: int, hop: int, sender: int, receiver: int) -> float:
    """Scalar uniform in [0, 1) at one message coordinate (tests, docs)."""
    h = message_hash(seed, query_key, hop, np.int64(sender), np.int64(receiver))
    return float(h) / float(2**64)
