"""Fault scenarios: the declarative layer of the fault-injection engine.

A :class:`FaultScenario` is a deterministic, seed-independent *description*
of what goes wrong and when — correlated node crashes, message-loss
windows, latency spikes, network partitions with scheduled heals, and
stale-neighbor-view injection.  The :class:`~repro.faults.injector.FaultInjector`
turns a scenario into concrete events on a live
:class:`~repro.sim.churn.ChurnSimulation`; all randomness (which nodes
crash under ``random`` mode, which side of a partition a node lands on,
the loss-stream keys) derives from the simulation's seed, so the same
``(scenario, seed)`` pair replays bit-identically.

Scenarios round-trip through JSON (``schemas/fault_scenario.schema.json``
documents the format) and a few named builtins ship in
:data:`BUILTIN_SCENARIOS` for the CLI (``repro faults list``).  Times are
absolute virtual times on the churn simulator's clock; a loss window or
latency spike with ``end: null`` stays active until the run finishes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.obs.report import UnsupportedSchemaError
from repro.util.validation import check_probability

#: Format version written by :meth:`FaultScenario.to_dict`; loading a file
#: announcing a *newer* version raises :class:`UnsupportedSchemaError`
#: (the CLI turns that into a one-line error and a nonzero exit).
SCENARIO_SCHEMA_VERSION = 1

CRASH_MODES = ("top-degree", "random", "stub-correlated")
PARTITION_MODES = ("random", "stub")


def _check_time(name: str, value: float) -> float:
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class CrashEvent:
    """Correlated node crashes at one instant.

    ``top-degree`` kills the currently best-connected online nodes (the
    paper's worst case), ``random`` a uniform sample, and
    ``stub-correlated`` whole stub domains of a transit-stub substrate
    (modeling access-network outages) until ``fraction`` of the population
    is down.  With ``rejoin`` the victims re-enter through the normal
    churn loop after exponential offline periods; without it the crash is
    the paper's non-recoverable kind.
    """

    time: float
    fraction: float
    mode: str = "top-degree"
    rejoin: bool = True

    def __post_init__(self):
        _check_time("crash time", self.time)
        check_probability("crash fraction", self.fraction)
        if self.mode not in CRASH_MODES:
            raise ValueError(
                f"crash mode must be one of {CRASH_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class LossWindow:
    """Per-message loss at ``rate`` between ``start`` and ``end``."""

    start: float
    rate: float
    end: Optional[float] = None

    def __post_init__(self):
        _check_time("loss window start", self.start)
        check_probability("loss rate", self.rate)
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError(
                f"loss window end ({self.end}) must be after start ({self.start})"
            )


@dataclass(frozen=True)
class LatencySpike:
    """Physical latencies inflated by ``factor`` between ``start`` and ``end``."""

    start: float
    factor: float
    end: Optional[float] = None

    def __post_init__(self):
        _check_time("latency spike start", self.start)
        if self.factor <= 0:
            raise ValueError(f"latency factor must be > 0, got {self.factor}")
        if self.end is not None and float(self.end) <= self.start:
            raise ValueError(
                f"latency spike end ({self.end}) must be after start ({self.start})"
            )


@dataclass(frozen=True)
class PartitionEvent:
    """A network partition at ``time``, healed at ``heal_time``.

    ``random`` assigns each node to the minority side independently with
    probability ``fraction``; ``stub`` cuts along stub-domain boundaries
    of a transit-stub substrate (whole domains land on one side).  While
    partitioned, every overlay edge crossing the cut is severed and no
    new cross-cut connection can form; at heal time the restriction lifts
    and under-capacity nodes run reconnection passes.
    """

    time: float
    heal_time: float
    fraction: float = 0.5
    mode: str = "random"

    def __post_init__(self):
        _check_time("partition time", self.time)
        check_probability("partition fraction", self.fraction)
        if float(self.heal_time) <= self.time:
            raise ValueError(
                f"heal_time ({self.heal_time}) must be after the partition "
                f"({self.time})"
            )
        if self.mode not in PARTITION_MODES:
            raise ValueError(
                f"partition mode must be one of {PARTITION_MODES}, "
                f"got {self.mode!r}"
            )


@dataclass(frozen=True)
class StaleViewEvent:
    """Poison a fraction of online nodes' host caches with dead peers.

    Models the stale-neighbor-view regime: affected nodes' next bootstrap
    sees a cache dominated by departed peers, so recovery must pay probe
    costs (and possibly fall back) before re-acquiring live neighbors.
    Requires the simulation to run with host caches enabled; otherwise the
    event is recorded as skipped.
    """

    time: float
    fraction: float = 0.5

    def __post_init__(self):
        _check_time("stale view time", self.time)
        check_probability("stale view fraction", self.fraction)


@dataclass(frozen=True)
class FaultScenario:
    """A composed fault schedule (see module docstring)."""

    name: str = "custom"
    description: str = ""
    crashes: tuple[CrashEvent, ...] = ()
    loss_windows: tuple[LossWindow, ...] = ()
    latency_spikes: tuple[LatencySpike, ...] = ()
    partitions: tuple[PartitionEvent, ...] = ()
    stale_views: tuple[StaleViewEvent, ...] = ()

    def __post_init__(self):
        # Overlapping partitions would need a multi-way cut model; keep the
        # engine honest by rejecting them up front.
        spans = sorted((p.time, p.heal_time) for p in self.partitions)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            if start_b < end_a:
                raise ValueError(
                    "partitions overlap; heal one before starting the next"
                )

    @property
    def n_events(self) -> int:
        """Total scheduled fault events (loss/latency windows count once)."""
        return (
            len(self.crashes) + len(self.loss_windows)
            + len(self.latency_spikes) + len(self.partitions)
            + len(self.stale_views)
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form, loadable by :meth:`from_dict`."""
        return {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "crashes": [
                {"time": c.time, "fraction": c.fraction, "mode": c.mode,
                 "rejoin": c.rejoin}
                for c in self.crashes
            ],
            "loss_windows": [
                {"start": w.start, "end": w.end, "rate": w.rate}
                for w in self.loss_windows
            ],
            "latency_spikes": [
                {"start": s.start, "end": s.end, "factor": s.factor}
                for s in self.latency_spikes
            ],
            "partitions": [
                {"time": p.time, "heal_time": p.heal_time,
                 "fraction": p.fraction, "mode": p.mode}
                for p in self.partitions
            ],
            "stale_views": [
                {"time": s.time, "fraction": s.fraction}
                for s in self.stale_views
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultScenario":
        """Parse and validate a scenario document."""
        if not isinstance(doc, dict):
            raise ValueError("fault scenario must be a JSON object")
        version = doc.get("schema_version", SCENARIO_SCHEMA_VERSION)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"bad scenario schema_version: {version!r}")
        if version > SCENARIO_SCHEMA_VERSION:
            raise UnsupportedSchemaError(
                f"fault scenario schema_version {version} is newer than the "
                f"supported version {SCENARIO_SCHEMA_VERSION}; upgrade repro "
                f"to read this file"
            )
        known = {
            "schema_version", "name", "description", "crashes",
            "loss_windows", "latency_spikes", "partitions", "stale_views",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown fault scenario keys: {unknown}")

        def rows(key):
            body = doc.get(key, [])
            if not isinstance(body, list):
                raise ValueError(f"scenario {key!r} must be a list")
            for i, row in enumerate(body):
                if not isinstance(row, dict):
                    raise ValueError(f"scenario {key}[{i}] must be an object")
            return body

        return cls(
            name=str(doc.get("name", "custom")),
            description=str(doc.get("description", "")),
            crashes=tuple(CrashEvent(**r) for r in rows("crashes")),
            loss_windows=tuple(LossWindow(**r) for r in rows("loss_windows")),
            latency_spikes=tuple(
                LatencySpike(**r) for r in rows("latency_spikes")
            ),
            partitions=tuple(PartitionEvent(**r) for r in rows("partitions")),
            stale_views=tuple(StaleViewEvent(**r) for r in rows("stale_views")),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultScenario":
        """Load a scenario JSON file."""
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except ValueError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_dict(doc)

    def write(self, path: str) -> None:
        """Write the scenario as pretty-printed JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


#: Named scenarios available to ``repro faults run`` / ``repro churn
#: --faults`` without a file.  Times assume the CLI's default 150-unit run.
BUILTIN_SCENARIOS: dict[str, FaultScenario] = {
    "paper-live-failures": FaultScenario(
        name="paper-live-failures",
        description=(
            "The paper's worst case, live: 20% top-degree crash at t=40 "
            "under 5% message loss, plus one partition/heal cycle "
            "(t=70..100) — recovery enabled instead of frozen snapshots"
        ),
        crashes=(CrashEvent(time=40.0, fraction=0.20, mode="top-degree"),),
        loss_windows=(LossWindow(start=0.0, end=None, rate=0.05),),
        partitions=(
            PartitionEvent(time=70.0, heal_time=100.0, fraction=0.5,
                           mode="random"),
        ),
    ),
    "partition-heal": FaultScenario(
        name="partition-heal",
        description=(
            "One clean random bisection at t=30 healed at t=70; isolates "
            "the sever/repair/reconnect path (the CI smoke scenario)"
        ),
        partitions=(
            PartitionEvent(time=30.0, heal_time=70.0, fraction=0.5,
                           mode="random"),
        ),
    ),
    "lossy-network": FaultScenario(
        name="lossy-network",
        description=(
            "10% message loss for the whole run with a 3x latency spike "
            "t=50..90; no crashes — stresses search under degraded links"
        ),
        loss_windows=(LossWindow(start=0.0, end=None, rate=0.10),),
        latency_spikes=(LatencySpike(start=50.0, end=90.0, factor=3.0),),
    ),
    "stub-outage": FaultScenario(
        name="stub-outage",
        description=(
            "Access-network outage: stub-domain-correlated crashes taking "
            "~25% of nodes at t=40 with stale-view poisoning at t=45 "
            "(requires --model transit-stub and host caches)"
        ),
        crashes=(
            CrashEvent(time=40.0, fraction=0.25, mode="stub-correlated"),
        ),
        stale_views=(StaleViewEvent(time=45.0, fraction=0.5),),
    ),
}


def load_scenario(name_or_path: str) -> FaultScenario:
    """Resolve a CLI scenario argument: builtin name first, then file path."""
    if name_or_path in BUILTIN_SCENARIOS:
        return BUILTIN_SCENARIOS[name_or_path]
    if not os.path.exists(name_or_path) and os.sep not in name_or_path:
        names = ", ".join(sorted(BUILTIN_SCENARIOS))
        raise ValueError(
            f"unknown fault scenario {name_or_path!r}: not a builtin "
            f"({names}) and no such file"
        )
    return FaultScenario.from_file(name_or_path)
