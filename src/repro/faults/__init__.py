"""Live fault injection: deterministic scenarios over the churn simulator.

Layers (bottom-up):

* :mod:`repro.faults.hashing` — counter-based message-loss randomness,
  pure functions of message coordinates so every execution strategy
  (scalar, batch, multi-process) drops the same messages;
* :mod:`repro.faults.link` — :class:`LinkFaults`, the per-query loss /
  latency environment the search kernels consume;
* :mod:`repro.faults.scenario` — :class:`FaultScenario`, the declarative
  JSON-round-trippable schedule of crashes, partitions, loss windows,
  latency spikes and stale views (plus named builtins);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which plays a
  scenario against a live :class:`~repro.sim.churn.ChurnSimulation`.

Recovery (retry with exponential backoff, bounded host-cache fallback)
lives with the rest of the protocol maintenance in
:mod:`repro.core.maintenance` (:class:`~repro.core.maintenance.RecoveryPolicy`).
"""

from repro.faults.hashing import drop_mask, message_hash, rate_threshold
from repro.faults.injector import FaultInjector
from repro.faults.link import LinkFaults
from repro.faults.scenario import (
    BUILTIN_SCENARIOS,
    SCENARIO_SCHEMA_VERSION,
    CrashEvent,
    FaultScenario,
    LatencySpike,
    LossWindow,
    PartitionEvent,
    StaleViewEvent,
    load_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "SCENARIO_SCHEMA_VERSION",
    "CrashEvent",
    "FaultInjector",
    "FaultScenario",
    "LatencySpike",
    "LinkFaults",
    "LossWindow",
    "PartitionEvent",
    "StaleViewEvent",
    "drop_mask",
    "load_scenario",
    "message_hash",
    "rate_threshold",
]
