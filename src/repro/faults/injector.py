"""Turn a :class:`FaultScenario` into live events on a churn simulation.

The injector is attached by :meth:`ChurnSimulation.run` when a scenario is
configured: it schedules one simulator event per scenario entry (absolute
virtual times) and, when they fire, mutates the live system through the
simulation's fault hooks — :meth:`crash_nodes` for correlated crashes,
``builder.link_filter`` + edge severing for partitions,
``churn.active_faults`` for message-loss windows, ``builder.latency_scale``
for latency spikes, and host-cache poisoning for stale views.

Determinism: every random choice (crash victims under ``random`` mode,
partition side assignment, per-window loss seeds, poison picks) draws from
the simulation's dedicated ``_fault_rng`` child stream in a fixed order,
and message-level loss is counter-based (:mod:`repro.faults.hashing`), so
one ``(scenario, seed)`` pair replays bit-identically — including across
worker counts of the batch/parallel search kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.link import LinkFaults
from repro.faults.scenario import (
    CrashEvent,
    FaultScenario,
    LatencySpike,
    LossWindow,
    PartitionEvent,
    StaleViewEvent,
)
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.churn import ChurnSimulation


class FaultInjector:
    """Schedules and applies a fault scenario on a :class:`ChurnSimulation`.

    Construct after the simulation's ``__post_init__`` (it borrows the
    ``_fault_rng`` stream and the live builder) and call :meth:`schedule`
    once, before the event loop runs.  :meth:`summary` reports what was
    actually applied — the numbers the CLI prints after a run.
    """

    def __init__(self, churn: "ChurnSimulation", scenario: Optional[FaultScenario] = None):
        self.churn = churn
        scenario = scenario if scenario is not None else churn.faults
        if scenario is None:
            raise ValueError("no fault scenario configured")
        self.scenario = scenario
        self.rng = churn._fault_rng
        # Loss seeds are drawn up front, in declaration order, so the k-th
        # window's message-drop stream does not depend on which other
        # events happened to fire first.
        self._window_seeds = [
            int(self.rng.integers(0, 2**63))
            for _ in scenario.loss_windows
        ]
        self._active_windows: dict[int, LossWindow] = {}
        self._active_spikes: dict[int, LatencySpike] = {}
        self._partition_side: Optional[np.ndarray] = None
        self.counts = {
            "crashes": 0,
            "crash_victims": 0,
            "partitions": 0,
            "partition_heals": 0,
            "severed_edges": 0,
            "loss_windows_opened": 0,
            "loss_windows_closed": 0,
            "latency_spikes_opened": 0,
            "latency_spikes_closed": 0,
            "stale_views": 0,
            "stale_view_victims": 0,
            "stale_views_skipped": 0,
        }
        self._validate()

    def _validate(self) -> None:
        needs_stub = any(
            c.mode == "stub-correlated" for c in self.scenario.crashes
        ) or any(p.mode == "stub" for p in self.scenario.partitions)
        if needs_stub and getattr(
            self.churn.builder.model, "stub_of_node", None
        ) is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} uses stub-correlated "
                f"faults, which need a transit-stub substrate "
                f"(--model transit-stub)"
            )

    @property
    def partition_active(self) -> bool:
        """Whether a partition is currently in force."""
        return self._partition_side is not None

    def schedule(self) -> None:
        """Queue every scenario entry on the simulation's event loop."""
        sim = self.churn._sim
        for c in self.scenario.crashes:
            sim.schedule_at(
                c.time, lambda s, ev=c: self._crash(ev), label="fault.crash"
            )
        for i, w in enumerate(self.scenario.loss_windows):
            sim.schedule_at(
                w.start, lambda s, k=i, ev=w: self._open_window(k, ev),
                label="fault.loss_open",
            )
            if w.end is not None:
                sim.schedule_at(
                    w.end, lambda s, k=i: self._close_window(k),
                    label="fault.loss_close",
                )
        for i, sp in enumerate(self.scenario.latency_spikes):
            sim.schedule_at(
                sp.start, lambda s, k=i, ev=sp: self._open_spike(k, ev),
                label="fault.spike_open",
            )
            if sp.end is not None:
                sim.schedule_at(
                    sp.end, lambda s, k=i: self._close_spike(k),
                    label="fault.spike_close",
                )
        for p in self.scenario.partitions:
            sim.schedule_at(
                p.time, lambda s, ev=p: self._begin_partition(ev),
                label="fault.partition",
            )
            sim.schedule_at(
                p.heal_time, lambda s, ev=p: self._heal_partition(ev),
                label="fault.heal",
            )
        for sv in self.scenario.stale_views:
            sim.schedule_at(
                sv.time, lambda s, ev=sv: self._stale_view(ev),
                label="fault.stale_view",
            )

    def summary(self) -> dict:
        """Counts of applied fault events (for CLI/report output)."""
        return dict(self.counts)

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------

    def _crash(self, ev: CrashEvent) -> None:
        churn = self.churn
        online_ids = np.flatnonzero(churn.online)
        k = int(round(ev.fraction * online_ids.size))
        if k == 0 or online_ids.size == 0:
            _obs.event("faults.crash_empty", t=churn._sim.now)
            return
        if ev.mode == "top-degree":
            degs = np.array(
                [churn.builder.adj.degree(int(u)) for u in online_ids]
            )
            order = np.argsort(-degs, kind="stable")
            victims = online_ids[order[:k]]
        elif ev.mode == "random":
            victims = self.rng.choice(online_ids, size=k, replace=False)
        else:  # stub-correlated: whole access domains go dark at once
            stubs = np.asarray(churn.builder.model.stub_of_node)
            node_stub = stubs[online_ids]
            picked: list[int] = []
            for d in self.rng.permutation(np.unique(node_stub)):
                picked.extend(online_ids[node_stub == d].tolist())
                if len(picked) >= k:
                    break
            victims = np.asarray(picked, dtype=np.int64)
        survivors = churn.crash_nodes(victims, rejoin=ev.rejoin)
        self.counts["crashes"] += 1
        self.counts["crash_victims"] += int(len(victims))
        _obs.event(
            "faults.crash_applied", t=churn._sim.now, mode=ev.mode,
            victims=int(len(victims)), bereaved=int(survivors.size),
        )

    # ------------------------------------------------------------------
    # Message loss windows and latency spikes
    # ------------------------------------------------------------------

    def _refresh_link_env(self) -> None:
        """Recompute the active link-fault environment.

        Overlapping loss windows do not stack: the highest-rate active
        window governs (deterministic tie-break on declaration order), a
        rule simple enough to reason about in parity tests.  Latency
        spikes likewise resolve to the largest active factor.
        """
        if self._active_windows:
            idx, window = max(
                self._active_windows.items(),
                key=lambda kv: (kv[1].rate, -kv[0]),
            )
            self.churn.active_faults = LinkFaults(
                loss_rate=window.rate, seed=self._window_seeds[idx]
            )
        else:
            self.churn.active_faults = None
        factors = [sp.factor for sp in self._active_spikes.values()]
        self.churn.builder.latency_scale = max(factors, default=1.0)

    def _open_window(self, idx: int, window: LossWindow) -> None:
        self._active_windows[idx] = window
        self._refresh_link_env()
        self.counts["loss_windows_opened"] += 1
        _obs.count("faults.loss_windows")
        _obs.event(
            "faults.loss_open", t=self.churn._sim.now, rate=window.rate
        )

    def _close_window(self, idx: int) -> None:
        self._active_windows.pop(idx, None)
        self._refresh_link_env()
        self.counts["loss_windows_closed"] += 1
        _obs.event("faults.loss_close", t=self.churn._sim.now)

    def _open_spike(self, idx: int, spike: LatencySpike) -> None:
        self._active_spikes[idx] = spike
        self._refresh_link_env()
        self.counts["latency_spikes_opened"] += 1
        _obs.count("faults.latency_spikes")
        _obs.event(
            "faults.spike_open", t=self.churn._sim.now, factor=spike.factor
        )

    def _close_spike(self, idx: int) -> None:
        self._active_spikes.pop(idx, None)
        self._refresh_link_env()
        self.counts["latency_spikes_closed"] += 1
        _obs.event("faults.spike_close", t=self.churn._sim.now)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def _partition_sides(self, ev: PartitionEvent) -> np.ndarray:
        n = self.churn.builder.n_nodes
        if ev.mode == "stub":
            stubs = np.asarray(self.churn.builder.model.stub_of_node)
            domains = np.unique(stubs)
            minority = domains[self.rng.random(domains.size) < ev.fraction]
            return np.isin(stubs, minority)
        return self.rng.random(n) < ev.fraction

    def _begin_partition(self, ev: PartitionEvent) -> None:
        churn, builder = self.churn, self.churn.builder
        side = self._partition_sides(ev)
        self._partition_side = side
        severed = 0
        bereaved: set[int] = set()
        adj = builder.adj
        for u in range(builder.n_nodes):
            for v in list(adj.neighbors(u)):
                if v > u and side[u] != side[v]:
                    adj.remove_edge(u, v)
                    severed += 1
                    bereaved.add(u)
                    bereaved.add(int(v))
        # No cross-cut edge can form while the partition holds: walks
        # cannot cross (the edges are gone) and direct attempts are
        # refused at the reachability check.
        builder.link_filter = lambda u, v, s=side: bool(s[u] == s[v])
        self.counts["partitions"] += 1
        self.counts["severed_edges"] += severed
        _obs.count("faults.partitions")
        _obs.count("faults.severed_edges", severed)
        _obs.event(
            "faults.partition", t=churn._sim.now, severed=severed,
            minority=int(side.sum()), mode=ev.mode,
        )
        churn.repair_or_recover(sorted(bereaved))

    def _heal_partition(self, ev: PartitionEvent) -> None:
        churn, builder = self.churn, self.churn.builder
        builder.link_filter = None
        self._partition_side = None
        self.counts["partition_heals"] += 1
        _obs.count("faults.partition_heals")
        _obs.event("faults.heal", t=churn._sim.now)
        adj, caps = builder.adj, builder.capacities
        needy = [
            u for u in range(builder.n_nodes)
            if churn.online[u] and adj.degree(u) < caps[u]
        ]
        churn.repair_or_recover(needy)

    # ------------------------------------------------------------------
    # Stale neighbor views
    # ------------------------------------------------------------------

    def _stale_view(self, ev: StaleViewEvent) -> None:
        churn = self.churn
        membership = churn.builder.membership
        online_ids = np.flatnonzero(churn.online)
        offline_ids = np.flatnonzero(~churn.online)
        if membership is None or not offline_ids.size or not online_ids.size:
            # Nothing stale to inject (no caches, or nobody is dead yet).
            self.counts["stale_views_skipped"] += 1
            _obs.count("faults.stale_views_skipped")
            _obs.event("faults.stale_view_skipped", t=churn._sim.now)
            return
        k = max(1, int(round(ev.fraction * online_ids.size)))
        victims = self.rng.choice(
            online_ids, size=min(k, online_ids.size), replace=False
        )
        for v in victims:
            cache = membership.caches[int(v)]
            poison = self.rng.choice(
                offline_ids,
                size=min(cache.capacity, offline_ids.size),
                replace=False,
            )
            cache.add_many(int(p) for p in poison)
        self.counts["stale_views"] += 1
        self.counts["stale_view_victims"] += int(victims.size)
        _obs.count("faults.stale_views")
        _obs.count("faults.stale_view_victims", int(victims.size))
        _obs.event(
            "faults.stale_view", t=churn._sim.now, victims=int(victims.size)
        )
