"""Per-link fault description consumed by the search kernels.

A :class:`LinkFaults` bundles the message-level failure environment a
query executes under: an i.i.d. per-message loss rate and a latency
inflation factor (the latter interpreted by latency-aware consumers such
as :class:`~repro.core.makalu.MakaluBuilder` during spike windows; the
hop-synchronous kernels only consume the loss).

Loss decisions are counter-based (:mod:`repro.faults.hashing`): a message
``sender -> receiver`` at hop ``h`` of the query with key ``k`` is dropped
iff ``hash(seed, k, h, sender, receiver) < rate * 2**64``.  Because the
decision is a pure function of those coordinates, the scalar flood, the
bit-parallel batch kernel and every worker-count of the process-parallel
runner drop exactly the same messages — the golden-parity tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.hashing import drop_mask
from repro.util.validation import check_probability


@dataclass(frozen=True)
class LinkFaults:
    """Message-level fault environment for one query workload.

    Attributes
    ----------
    loss_rate:
        Per-message i.i.d. drop probability in [0, 1].
    seed:
        Loss-stream key; scenarios derive one per loss window so separate
        windows make independent decisions.
    latency_factor:
        Multiplier on physical link latencies while active (latency
        spikes).  Ignored by the loss-only kernels.
    """

    loss_rate: float = 0.0
    seed: int = 0
    latency_factor: float = 1.0

    def __post_init__(self):
        check_probability("loss_rate", self.loss_rate)
        if self.latency_factor <= 0:
            raise ValueError(
                f"latency_factor must be > 0, got {self.latency_factor}"
            )

    @property
    def lossy(self) -> bool:
        """Whether any message can be dropped under this environment."""
        return self.loss_rate > 0.0

    def drop(self, query_keys, hop: int, senders, receivers) -> np.ndarray:
        """Boolean drop mask for a block of messages.

        With a scalar ``query_keys`` the mask matches ``senders``' shape;
        with a ``(nq,)`` vector it is ``(len(senders), nq)`` — one column
        per query of a batch kernel invocation.
        """
        return drop_mask(
            self.loss_rate, self.seed, query_keys, hop, senders, receivers
        )
