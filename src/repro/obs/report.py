"""Offline analysis of observability artifacts: the ``repro obs`` toolkit.

Three operations over the JSON artifacts runs leave behind (metric
snapshots from ``--metrics-json``, bench run histories from
``scripts/bench_smoke.py``, JSONL traces from ``--trace``, profile dumps
from ``--profile-json``):

* :func:`render_report` — human-readable health/metrics report of one
  snapshot, including time-series trajectories;
* :func:`diff_metrics` — per-metric relative deltas between two snapshots
  (or bench histories), with direction-aware regression flagging for CI
  gating (``repro obs diff --fail-on-regression``);
* :func:`export_chrome_trace` — convert a tracer JSONL file or a profile
  dump into Chrome's ``chrome://tracing`` / Perfetto JSON format, with
  one lane per ``query_id`` for queueing-path events;
* :func:`hot_metrics` — top-k per-entity gauge ranking
  (``repro obs top``, the hot-node report);
* ``repro obs slo`` — SLO evaluation lives in :mod:`repro.obs.slo` and
  is wired here.

Everything here is dependency-free (stdlib json only) so CI can gate on
it without installing the package's numeric stack.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.quantiles import quantiles_of_state


class UnsupportedSchemaError(ValueError):
    """An artifact announces a schema version newer than this build reads.

    CLI entry points catch this and turn it into a one-line stderr message
    with exit status 2 — a forward-compatibility file should fail loudly
    but never with a traceback.
    """


#: Newest ``schema_version`` this build knows how to read, for both metric
#: snapshots and bench run histories (currently in lockstep at 3; version
#: 3 added the ``quantiles`` section).  Older versions load fine — the
#: newer sections are simply absent.
SUPPORTED_SNAPSHOT_SCHEMA = 3

#: Metric-name fragments where *larger* values are better; a relative
#: decrease beyond the threshold is the regression.  Everything else is
#: judged conservatively as lower-is-better (more messages, more wall
#: time, more components, more staleness — all worse).
HIGHER_IS_BETTER = (
    "success",
    "giant",
    "largest",
    "expansion",
    "spectral_gap",
    "speedup",
    "online",
    "accepted",
    "mean_degree",
    "min_degree",
    "hits",
    "p99_ratio",
    "saturation_multiplier",
)


def improves_when_higher(name: str) -> bool:
    """Whether metric ``name`` is better when larger."""
    return any(frag in name for frag in HIGHER_IS_BETTER)


# ----------------------------------------------------------------------
# Loading: metric snapshots and bench run histories
# ----------------------------------------------------------------------


def load_document(path: str) -> dict:
    """Load a JSON artifact (snapshot or bench history) from ``path``.

    Raises :class:`UnsupportedSchemaError` when the artifact declares a
    ``schema_version`` newer than :data:`SUPPORTED_SNAPSHOT_SCHEMA` —
    diffing a half-understood document would silently drop the sections
    this build does not know about.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    version = doc.get("schema_version")
    if isinstance(version, int) and version > SUPPORTED_SNAPSHOT_SCHEMA:
        raise UnsupportedSchemaError(
            f"{path}: schema_version {version} is newer than the supported "
            f"version {SUPPORTED_SNAPSHOT_SCHEMA}; upgrade repro to read it"
        )
    return doc


def latest_bench_record(doc: dict) -> Optional[dict]:
    """The most recent run record of a bench history, or None.

    Accepts both the accumulating layout (``{"runs": [...]}``,
    ``scripts/bench_smoke.py`` schema 2) and the legacy single-run layout
    (wall times at top level, schema 1).
    """
    runs = doc.get("runs")
    if isinstance(runs, list) and runs:
        return runs[-1]
    if "wall_time_ms" in doc:
        return doc
    return None


def flatten_metrics(doc: dict) -> Dict[str, float]:
    """Numeric leaves of a snapshot or bench record, keyed by dotted path.

    This is the comparison space of :func:`diff_metrics`:

    * counters and gauges map through unchanged;
    * histograms contribute ``<name>.count`` and ``<name>.mean``;
    * quantile histograms contribute ``<name>.count``, ``<name>.mean``,
      ``<name>.p50``/``.p90``/``.p99``/``.p999`` and ``<name>.max`` —
      the latency surface SLOs and regression gates evaluate;
    * time series contribute ``<name>.samples``, ``<name>.last``,
      ``<name>.mean`` and ``<name>.min`` — the trajectory summary a
      regression gate can hold steady across runs;
    * bench records contribute ``wall_time_ms.*`` and
      ``speedup_vs_scalar.*``.
    """
    bench = latest_bench_record(doc)
    if bench is not None and "counters" not in doc:
        flat: Dict[str, float] = {}
        for section in ("wall_time_ms", "speedup_vs_scalar"):
            for name, value in bench.get(section, {}).items():
                if isinstance(value, (int, float)):
                    flat[f"{section}.{name}"] = float(value)
        return flat

    flat = {}
    for name, value in doc.get("counters", {}).items():
        flat[name] = float(value)
    for name, value in doc.get("gauges", {}).items():
        flat[name] = float(value)
    for name, h in doc.get("histograms", {}).items():
        count = float(h.get("count", 0))
        flat[f"{name}.count"] = count
        if count:
            flat[f"{name}.mean"] = float(h["sum"]) / count
    for name, q in doc.get("quantiles", {}).items():
        count = float(q.get("count", 0))
        flat[f"{name}.count"] = count
        if count:
            flat[f"{name}.mean"] = float(q["sum"]) / count
            for label, value in quantiles_of_state(q).items():
                flat[f"{name}.{label}"] = value
            if q.get("max") is not None:
                flat[f"{name}.max"] = float(q["max"])
    for name, ts in doc.get("timeseries", {}).items():
        values = [float(v) for _, v in ts.get("points", [])]
        flat[f"{name}.samples"] = float(len(values))
        if values:
            flat[f"{name}.last"] = values[-1]
            flat[f"{name}.mean"] = sum(values) / len(values)
            flat[f"{name}.min"] = min(values)
    return flat


# ----------------------------------------------------------------------
# repro obs report
# ----------------------------------------------------------------------


def _series_line(name: str, points: List[list]) -> str:
    values = [float(v) for _, v in points]
    if not values:
        return f"  {name}: (no samples)"
    lo, hi = min(values), max(values)
    mean = sum(values) / len(values)
    return (
        f"  {name}: {len(values)} samples over "
        f"t=[{points[0][0]:g}, {points[-1][0]:g}]  "
        f"min={lo:g} mean={mean:g} max={hi:g} last={values[-1]:g}"
    )


def _quantile_line(name: str, state: dict) -> str:
    count = state.get("count", 0)
    if not count:
        return f"  {name}: (no observations)"
    qs = quantiles_of_state(state)
    mean = state.get("sum", 0.0) / count
    readout = " ".join(f"{label}={value:g}" for label, value in qs.items())
    return (
        f"  {name}: count={count} mean={mean:g} {readout} "
        f"max={state.get('max', float('nan')):g}"
    )


def render_report(doc: dict, title: str = "metrics snapshot") -> str:
    """Human-readable report of one snapshot / bench history."""
    lines = [f"== {title} =="]
    bench = latest_bench_record(doc)
    if bench is not None and "counters" not in doc:
        runs = doc.get("runs", [doc])
        lines.append(f"bench history: {len(runs)} run(s)")
        for section in ("wall_time_ms", "speedup_vs_scalar"):
            body = bench.get(section, {})
            if body:
                lines.append(f"{section}:")
                for name in sorted(body):
                    lines.append(f"  {name}: {body[name]:g}")
        meta = {
            k: bench[k]
            for k in ("timestamp", "git_sha", "host")
            if k in bench
        }
        if meta:
            lines.append(f"latest run: {json.dumps(meta, sort_keys=True)}")
        return "\n".join(lines)

    version = doc.get("schema_version")
    lines.append(f"schema_version: {version}")
    counters = doc.get("counters", {})
    if counters:
        lines.append(f"counters ({len(counters)}):")
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
    gauges = doc.get("gauges", {})
    if gauges:
        lines.append(f"gauges ({len(gauges)}):")
        for name in sorted(gauges):
            lines.append(f"  {name}: {gauges[name]:g}")
    histograms = doc.get("histograms", {})
    if histograms:
        lines.append(f"histograms ({len(histograms)}):")
        for name in sorted(histograms):
            h = histograms[name]
            count = h.get("count", 0)
            mean = (h.get("sum", 0.0) / count) if count else float("nan")
            lines.append(f"  {name}: count={count} mean={mean:g}")
    quantiles = doc.get("quantiles", {})
    if quantiles:
        lines.append(f"quantiles ({len(quantiles)}):")
        for name in sorted(quantiles):
            lines.append(_quantile_line(name, quantiles[name]))
    series = doc.get("timeseries", {})
    if series:
        lines.append(f"time series ({len(series)}):")
        for name in sorted(series):
            lines.append(_series_line(name, series[name].get("points", [])))
    if len(lines) == 2:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro obs diff
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two artifacts."""

    name: str
    before: Optional[float]
    after: Optional[float]
    relative: float  # (after - before) / |before|; inf/nan on edge cases

    @property
    def is_regression_candidate(self) -> bool:
        """Whether the direction of change is the bad one for this metric."""
        if self.before is None or self.after is None:
            return False
        if math.isnan(self.relative) or self.relative == 0.0:
            return False
        if improves_when_higher(self.name):
            return self.relative < 0
        return self.relative > 0

    def exceeds(self, threshold: float) -> bool:
        """Whether the change is a regression beyond ``threshold``."""
        return self.is_regression_candidate and abs(self.relative) > threshold


def diff_metrics(before: dict, after: dict) -> List[MetricDelta]:
    """Per-metric relative deltas between two artifacts, sorted by name.

    Metrics present on only one side get a ``None`` on the other and a NaN
    relative delta (reported, never gated — renames should not silently
    pass, but they are not numeric regressions either).
    """
    a, b = flatten_metrics(before), flatten_metrics(after)
    deltas = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None or vb is None:
            rel = float("nan")
        elif va == vb:
            rel = 0.0
        elif va == 0.0:
            rel = math.copysign(float("inf"), vb)
        else:
            rel = (vb - va) / abs(va)
        deltas.append(MetricDelta(name=name, before=va, after=vb, relative=rel))
    return deltas


def format_diff(
    deltas: List[MetricDelta],
    threshold: float = 0.05,
    show_unchanged: bool = False,
) -> str:
    """Render a diff as text; regressions beyond ``threshold`` are marked."""
    lines = []
    for d in deltas:
        if d.relative == 0.0 and not show_unchanged:
            continue
        before = "-" if d.before is None else f"{d.before:g}"
        after = "-" if d.after is None else f"{d.after:g}"
        rel = "n/a" if math.isnan(d.relative) else f"{100 * d.relative:+.1f}%"
        mark = "  REGRESSION" if d.exceeds(threshold) else ""
        lines.append(f"  {d.name}: {before} -> {after} ({rel}){mark}")
    if not lines:
        return "  (no differences)"
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro obs export-trace
# ----------------------------------------------------------------------


def _tracer_events_to_chrome(events: List[dict]) -> List[dict]:
    """Tracer events -> Chrome instant events.

    Tracer events carry a total order (``seq``) but no wall-clock stamps,
    so ``ts`` is the sequence number in microseconds — the viewer shows
    the run's causal order at one event per tick.  Events with a virtual
    time ``t`` keep it in ``args``.

    Events that carry a ``query_id`` correlation field (the queueing
    simulator's per-query causal path: enqueue -> service -> forward ->
    hit) get **one lane per query**: ``tid`` is the query id, ``ts`` is
    the event's virtual time ``t`` in microseconds, and a thread-name
    metadata record labels the lane, so a query's hop tree reads as one
    horizontal track in chrome://tracing / Perfetto.

    Events that instead carry a ``src`` tracer identity (a merged
    multi-tracer trace — live per-peer sinks, parallel shards) get
    **one lane per source** on a second process (pid 2): lanes order
    naturally (peer "10" after "2"), ``ts`` is the event's ``t``
    normalized to the earliest sourced event, and each lane's metadata
    label names the timebase — ``[wall]`` for live wall-clock traces
    (``tb: "wall"``), ``[virtual]`` for simulator time — so mixed
    exports are visibly mixed rather than silently conflated.  Live
    query hop edges (``node.query.origin``/``fwd`` -> ``rx``/``dup``
    with a shared ``trace`` correlation ID) additionally become Chrome
    flow arrows between the sender's and receiver's lanes, drawing the
    flood's causal tree across peers.
    """
    out = []
    query_lanes: List[int] = []

    def _has_query_lane(event: dict) -> bool:
        qid = event.get("query_id")
        return isinstance(qid, int) and not isinstance(qid, bool)

    # Per-src lanes: assign tids in natural src order, normalize t.
    srcs = sorted(
        {str(e["src"]) for e in events
         if "src" in e and not _has_query_lane(e)},
        key=lambda s: (0, int(s), "") if s.isdigit() else (1, 0, s),
    )
    src_tid = {s: i + 1 for i, s in enumerate(srcs)}
    src_timebase: Dict[str, str] = {}
    src_t = [
        float(e["t"]) for e in events
        if "t" in e and "src" in e and not _has_query_lane(e)
    ]
    t0 = min(src_t) if src_t else 0.0

    #: (trace, src) -> (ts, tid) of the sender's origin/fwd record.
    flow_sends: Dict[Tuple[str, str], Tuple[float, int]] = {}
    flow_edges: List[Tuple[Tuple[float, int], Tuple[float, int]]] = []

    for event in events:
        args = {k: v for k, v in event.items() if k not in ("seq", "kind")}
        record = {
            "name": event.get("kind", "event"),
            "cat": str(event.get("kind", "event")).split(".")[0],
            "ph": "i",
            "s": "t",
            "ts": int(event.get("seq", 0)),
            "pid": 1,
            "tid": 1,
            "args": args,
        }
        if _has_query_lane(event):
            qid = event["query_id"]
            record["tid"] = qid + 2  # lane 1 stays the un-correlated stream
            if "t" in event:
                record["ts"] = float(event["t"]) * 1e6
            if qid not in query_lanes:
                query_lanes.append(qid)
        elif "src" in event:
            src = str(event["src"])
            record["pid"] = 2
            record["tid"] = src_tid[src]
            if "t" in event:
                record["ts"] = (float(event["t"]) - t0) * 1e6
            src_timebase.setdefault(
                src, "wall" if event.get("tb") == "wall" else "virtual"
            )
            kind = event.get("kind")
            trace_id = event.get("trace")
            if trace_id is not None:
                pos = (record["ts"], record["tid"])
                if kind in ("node.query.origin", "node.query.fwd"):
                    flow_sends.setdefault((str(trace_id), src), pos)
                elif kind in ("node.query.rx", "node.query.dup"):
                    sender = flow_sends.get(
                        (str(trace_id), str(event.get("peer", "")))
                    )
                    if sender is not None:
                        flow_edges.append((sender, pos))
        out.append(record)
    for qid in query_lanes:
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": qid + 2,
            "args": {"name": f"query {qid}"},
        })
    for src in srcs:
        tb = src_timebase.get(src, "virtual")
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 2,
            "tid": src_tid[src],
            "args": {"name": f"src {src} [{tb}]"},
        })
    if srcs:
        out.append({
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "args": {"name": "trace sources"},
        })
    for flow_id, (sender, receiver) in enumerate(flow_edges):
        for ph, (ts, tid) in (("s", sender), ("f", receiver)):
            rec = {
                "name": "query.hop",
                "cat": "flow",
                "ph": ph,
                "id": flow_id,
                "ts": ts,
                "pid": 2,
                "tid": tid,
            }
            if ph == "f":
                rec["bp"] = "e"
            out.append(rec)
    return out


def _profile_timeline_to_chrome(timeline: List[dict]) -> List[dict]:
    """Profile span records -> Chrome complete ("X") duration events."""
    if not timeline:
        return []
    t0 = min(span["start_s"] for span in timeline)
    out = []
    for span in timeline:
        path = span["path"]
        out.append({
            "name": path.rsplit("/", 1)[-1],
            "cat": path.split("/", 1)[0],
            "ph": "X",
            "ts": (span["start_s"] - t0) * 1e6,
            "dur": max((span["end_s"] - span["start_s"]) * 1e6, 0.0),
            "pid": 1,
            "tid": 1,
            "args": {"path": path},
        })
    return out


def write_chrome_trace(events: List[dict], out_path: str,
                       source: str = "merged-trace") -> int:
    """Write an in-memory tracer event list as Chrome trace JSON.

    The programmatic counterpart of :func:`export_chrome_trace` for
    callers that already merged events (``repro node trace --export``);
    returns the number of Chrome records written.
    """
    chrome = _tracer_events_to_chrome(events)
    out = {
        "traceEvents": chrome,
        "displayTimeUnit": "ms",
        "otherData": {"source": source, "converter": "repro obs (trace)"},
    }
    with open(out_path, "w") as fh:
        json.dump(out, fh)
        fh.write("\n")
    return len(chrome)


def export_chrome_trace(in_path: str, out_path: str) -> Tuple[int, str]:
    """Convert a tracer JSONL file or a profile dump to Chrome trace JSON.

    The input kind is autodetected: JSONL lines with ``seq``/``kind``
    are tracer events; a JSON object with a ``timeline`` list is a
    ``--profile-json`` dump (its spans become duration events).  Partial
    JSONL files (e.g. from a crashed run) are converted up to the first
    unparseable line.  Returns ``(n_events, kind)``.
    """
    with open(in_path) as fh:
        text = fh.read()

    chrome: List[dict] = []
    kind = "trace"
    stripped = text.lstrip()
    profile_doc = None
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except ValueError:
            doc = None
        if isinstance(doc, dict) and "timeline" in doc:
            profile_doc = doc
    if profile_doc is not None:
        kind = "profile"
        chrome = _profile_timeline_to_chrome(profile_doc["timeline"])
    else:
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                break  # truncated tail of a crashed run; keep what parsed
            if isinstance(event, dict):
                events.append(event)
        if not events:
            raise ValueError(
                f"{in_path}: neither a tracer JSONL file nor a profile dump"
            )
        chrome = _tracer_events_to_chrome(events)

    out = {
        "traceEvents": chrome,
        "displayTimeUnit": "ms",
        "otherData": {"source": in_path, "converter": f"repro obs ({kind})"},
    }
    with open(out_path, "w") as fh:
        json.dump(out, fh)
        fh.write("\n")
    return len(chrome), kind


# ----------------------------------------------------------------------
# CLI entry points (wired under ``repro obs`` by repro.cli)
# ----------------------------------------------------------------------


def cmd_report(args) -> int:
    """``repro obs report SNAPSHOT``"""
    try:
        doc = load_document(args.snapshot)
    except UnsupportedSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(doc, title=args.snapshot))
    return 0


def cmd_diff(args) -> int:
    """``repro obs diff A B [--fail-on-regression --threshold X]``"""
    try:
        before = load_document(args.before)
        after = load_document(args.after)
    except UnsupportedSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = diff_metrics(before, after)
    excluded = getattr(args, "exclude", None) or []
    if excluded:
        import fnmatch

        deltas = [
            d for d in deltas
            if not any(fnmatch.fnmatch(d.name, pat) for pat in excluded)
        ]
    regressions = [d for d in deltas if d.exceeds(args.threshold)]
    print(f"diff {args.before} -> {args.after} "
          f"(threshold {100 * args.threshold:g}%):")
    print(format_diff(deltas, threshold=args.threshold,
                      show_unchanged=args.show_unchanged))
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{100 * args.threshold:g}%")
        if args.fail_on_regression:
            return 1
    else:
        print("no regressions")
    return 0


def hot_metrics(
    doc: dict, prefix: str, k: int
) -> List[Tuple[str, float]]:
    """Top-``k`` ``(suffix, value)`` pairs of metrics under ``prefix``.

    Gauges match directly; time series contribute their last sample.
    This is how ``repro obs top`` ranks per-node utilization gauges
    (``queue.node_util.<id>``) out of a capacity-run snapshot, but any
    per-entity gauge family works.  Sorted by value descending, name
    ascending on ties (deterministic output).
    """
    rows: Dict[str, float] = {}
    for name, value in doc.get("gauges", {}).items():
        if name.startswith(prefix):
            rows[name[len(prefix):]] = float(value)
    for name, ts in doc.get("timeseries", {}).items():
        if name.startswith(prefix):
            points = ts.get("points", [])
            if points:
                rows.setdefault(name[len(prefix):], float(points[-1][1]))
    ranked = sorted(rows.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[: max(0, k)]


def cmd_top(args) -> int:
    """``repro obs top SNAPSHOT [-k N] [--prefix P]``"""
    try:
        doc = load_document(args.snapshot)
    except UnsupportedSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = hot_metrics(doc, args.prefix, args.k)
    if not rows:
        print(f"error: no metrics under prefix {args.prefix!r} in "
              f"{args.snapshot}", file=sys.stderr)
        return 1
    print(f"== top {len(rows)} by {args.prefix}* ==")
    width = max(len(name) for name, _ in rows)
    for rank, (name, value) in enumerate(rows, start=1):
        print(f"  {rank:3d}. {name:<{width}}  {value:g}")
    return 0


def cmd_export_trace(args) -> int:
    """``repro obs export-trace INPUT [--out OUT]``"""
    out_path = args.out or (args.input.rsplit(".", 1)[0] + ".chrome.json")
    n_events, kind = export_chrome_trace(args.input, out_path)
    print(f"wrote {out_path}: {n_events} {kind} event(s) "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def add_obs_subparsers(sub) -> None:
    """Attach the ``obs`` subcommand family to a subparsers object."""
    obs_parser = sub.add_parser(
        "obs", help="analyze observability artifacts (report/diff/export)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser(
        "report", help="human-readable report of a metrics snapshot"
    )
    p.add_argument("snapshot", help="metrics snapshot or bench history JSON")
    p.set_defaults(func=cmd_report)

    p = obs_sub.add_parser(
        "diff", help="per-metric relative deltas between two artifacts"
    )
    p.add_argument("before", help="baseline snapshot / bench history")
    p.add_argument("after", help="candidate snapshot / bench history")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="relative-change regression threshold "
                        "(default: %(default)s)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit nonzero if any regression exceeds the "
                        "threshold (CI gate)")
    p.add_argument("--show-unchanged", action="store_true",
                   help="also list metrics with zero delta")
    p.add_argument("--exclude", action="append", metavar="GLOB",
                   default=None,
                   help="drop metrics matching GLOB from the diff "
                        "(repeatable; e.g. 'node.dispatch_s*' to "
                        "ignore wall-clock histograms)")
    p.set_defaults(func=cmd_diff)

    from repro.obs.slo import cmd_slo

    p = obs_sub.add_parser(
        "slo", help="evaluate a snapshot against service-level objectives"
    )
    p.add_argument("snapshot", help="metrics snapshot JSON")
    p.add_argument("--spec", default=None,
                   help="builtin SLO name or spec JSON file "
                        "(see schemas/slo_spec.schema.json)")
    p.add_argument("--require", action="append", metavar="METRIC<=X",
                   help="inline objective ('metric<=value' or "
                        "'metric>=value'); repeatable, combines with "
                        "--spec")
    p.set_defaults(func=cmd_slo)

    p = obs_sub.add_parser(
        "top", help="hot-entity report: top-k per-node metrics by value"
    )
    p.add_argument("snapshot", help="metrics snapshot JSON")
    p.add_argument("-k", type=int, default=10,
                   help="entries to show (default: %(default)s)")
    p.add_argument("--prefix", default="queue.node_util.",
                   help="metric-name prefix to rank under "
                        "(default: %(default)s)")
    p.set_defaults(func=cmd_top)

    p = obs_sub.add_parser(
        "export-trace",
        help="convert a JSONL trace or profile dump to Chrome trace format",
    )
    p.add_argument("input", help="tracer JSONL file or --profile-json dump")
    p.add_argument("--out", default=None,
                   help="output path (default: INPUT with .chrome.json)")
    p.set_defaults(func=cmd_export_trace)
