"""Time-series metric instrument: (time, value) samples over a run.

Counters, gauges and histograms summarize a run *after* it finishes; a
:class:`TimeSeries` keeps the trajectory — how many components the online
overlay had at t=20, 40, 60 — so health under churn is inspectable per
sample rather than collapsed to an end-state aggregate.  The instrument is
deliberately dumb: an append-only list of ``(t, value)`` pairs, no clocks,
no interpolation, no RNG, so recording from a seeded simulation cannot
perturb it.

Snapshot form (``schemas/metrics_snapshot.schema.json``, version 2)::

    {"timeseries": {"health.n_components": {"points": [[20.0, 1], ...]}}}

``t`` is whatever the recorder passes — virtual simulation time for the
churn health sampler, a round index for construction-phase sampling.
Points are kept in record order; recorders are expected to sample
monotonically, and :func:`merge_points` re-sorts when combining series
from different processes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point = Tuple[float, float]


class TimeSeries:
    """Append-only sequence of ``(t, value)`` samples."""

    __slots__ = ("name", "points")

    def __init__(self, name: str):
        self.name = name
        self.points: List[Point] = []

    def record(self, t: float, value: float) -> None:
        """Append one sample at time ``t``."""
        self.points.append((float(t), float(value)))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.points)

    @property
    def last(self) -> float:
        """Most recent value (raises on an empty series)."""
        if not self.points:
            raise ValueError(f"time series {self.name!r} has no samples")
        return self.points[-1][1]

    def values(self) -> List[float]:
        """The sampled values, in record order."""
        return [v for _, v in self.points]

    def times(self) -> List[float]:
        """The sample times, in record order."""
        return [t for t, _ in self.points]


def merge_points(a: Sequence[Point], b: Sequence[Point]) -> List[Point]:
    """Combine two point sequences, ordered by time (stable on ties).

    Used by :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` to
    recombine worker-process series into the parent session.
    """
    merged = [(float(t), float(v)) for t, v in a]
    merged.extend((float(t), float(v)) for t, v in b)
    merged.sort(key=lambda p: p[0])
    return merged
