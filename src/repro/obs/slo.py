"""Declarative service-level objectives over metric snapshots.

An SLO spec names bounds on the *flattened* metric space of a snapshot
(:func:`repro.obs.report.flatten_metrics`): quantile readouts like
``queue.response_s.p99``, gauges like ``queue.success_rate``, counters,
time-series summaries — anything a snapshot can express.  Evaluation is
pure data-in/data-out so CI can gate serving behaviour the same way
``repro obs diff`` gates regressions::

    repro obs slo snapshot.json --spec capacity-default
    repro obs slo snapshot.json --require 'queue.response_s.p99<=5.0'

Spec JSON (``schemas/slo_spec.schema.json``, version 1)::

    {"schema_version": 1,
     "name": "interactive-search",
     "description": "p99 under 5s, 19 of 20 queries resolve",
     "objectives": [
         {"metric": "queue.response_s.p99", "max": 5.0},
         {"metric": "queue.success_rate", "min": 0.95}]}

An objective whose metric is absent from the snapshot **fails** — an SLO
silently evaluating to "pass" because the latency plane was off is the
worst possible outcome for a gate.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.report import (
    UnsupportedSchemaError,
    flatten_metrics,
    load_document,
)

#: Version stamped on (and required of) SLO spec files.
SLO_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Objective:
    """One bound on one flattened metric (at least one side required)."""

    metric: str
    max: Optional[float] = None
    min: Optional[float] = None

    def __post_init__(self):
        if not self.metric:
            raise ValueError("objective needs a metric name")
        if self.max is None and self.min is None:
            raise ValueError(
                f"objective {self.metric!r} needs a max and/or min bound"
            )

    @property
    def bound_text(self) -> str:
        """Human-readable bound, e.g. ``<= 5 and >= 1``."""
        parts = []
        if self.max is not None:
            parts.append(f"<= {self.max:g}")
        if self.min is not None:
            parts.append(f">= {self.min:g}")
        return " and ".join(parts)


@dataclass(frozen=True)
class SloSpec:
    """A named set of objectives."""

    name: str
    objectives: Tuple[Objective, ...]
    description: str = ""

    def __post_init__(self):
        if not self.objectives:
            raise ValueError(f"SLO {self.name!r} has no objectives")

    def to_dict(self) -> dict:
        """Spec-file JSON form (round-trips through :func:`spec_from_dict`)."""
        objectives = []
        for o in self.objectives:
            entry: dict = {"metric": o.metric}
            if o.max is not None:
                entry["max"] = o.max
            if o.min is not None:
                entry["min"] = o.min
            objectives.append(entry)
        return {
            "schema_version": SLO_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "objectives": objectives,
        }


def spec_from_dict(doc: dict, origin: str = "<spec>") -> SloSpec:
    """Parse and validate a spec-file dict (strict, path-qualified errors)."""
    if not isinstance(doc, dict):
        raise ValueError(f"{origin}: SLO spec must be a JSON object")
    version = doc.get("schema_version")
    if version != SLO_SCHEMA_VERSION:
        if isinstance(version, int) and version > SLO_SCHEMA_VERSION:
            raise UnsupportedSchemaError(
                f"{origin}: SLO schema_version {version} is newer than the "
                f"supported version {SLO_SCHEMA_VERSION}; upgrade repro to "
                f"read it"
            )
        raise ValueError(
            f"{origin}: schema_version must be {SLO_SCHEMA_VERSION}, "
            f"got {version!r}"
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{origin}: SLO spec needs a non-empty name")
    raw = doc.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"{origin}: SLO spec needs a non-empty objectives "
                         f"list")
    objectives = []
    for i, entry in enumerate(raw):
        where = f"{origin}: objectives[{i}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: expected an object")
        extra = set(entry) - {"metric", "max", "min"}
        if extra:
            raise ValueError(f"{where}: unexpected keys {sorted(extra)}")
        metric = entry.get("metric")
        if not isinstance(metric, str) or not metric:
            raise ValueError(f"{where}: needs a metric name")
        bounds = {}
        for side in ("max", "min"):
            value = entry.get(side)
            if value is not None:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: {side} must be a number")
                bounds[side] = float(value)
        try:
            objectives.append(Objective(metric=metric, **bounds))
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from None
    return SloSpec(
        name=name,
        description=str(doc.get("description", "")),
        objectives=tuple(objectives),
    )


#: Built-in SLOs, addressable by name from ``repro obs slo --spec``.
#: ``capacity-default`` is the bar the CI capacity-regression job holds
#: ``benchmarks/bench_capacity.py`` snapshots to: Makalu's p99 response
#: under heavy traffic stays bounded, nearly every query resolves, and
#: the power-law baseline's saturated-hub p99 exceeds Makalu's by a
#: comfortable margin (the paper's Section-6 queueing claim).
BUILTIN_SLOS: Dict[str, SloSpec] = {
    "capacity-default": SloSpec(
        name="capacity-default",
        description=(
            "Heavy-traffic serving bar for the capacity benchmark: "
            "bounded Makalu tail latency, high success, and a power-law "
            "hub p99 penalty of at least 1.5x"
        ),
        objectives=(
            # Measured at the committed baseline: p99 ~0.94s, success
            # ~0.977, ratio ~6.5x; bounds leave room for benign jitter.
            Objective("capacity.makalu.response_s.p99", max=10.0),
            Objective("capacity.makalu.success_rate", min=0.9),
            Objective("capacity.p99_ratio", min=1.5),
        ),
    ),
    "interactive-search": SloSpec(
        name="interactive-search",
        description=(
            "Per-run serving bar for `repro capacity`: sub-5s p99 in "
            "virtual seconds and 90% query success"
        ),
        objectives=(
            Objective("queue.response_s.p99", max=5.0),
            Objective("queue.success_rate", min=0.9),
        ),
    ),
}


def load_slo_spec(name_or_path: str) -> SloSpec:
    """Resolve a builtin SLO name or load + validate a spec JSON file."""
    if name_or_path in BUILTIN_SLOS:
        return BUILTIN_SLOS[name_or_path]
    try:
        with open(name_or_path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ValueError(
            f"{name_or_path!r} is neither a builtin SLO "
            f"({', '.join(sorted(BUILTIN_SLOS))}) nor a readable spec "
            f"file: {exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{name_or_path}: not valid JSON: {exc}") from None
    return spec_from_dict(doc, origin=name_or_path)


def parse_requirement(text: str) -> Objective:
    """Parse an inline ``--require`` objective: ``metric<=X`` / ``metric>=X``.

    ``<=`` sets a max, ``>=`` a min; both may be combined across repeated
    flags but one flag carries exactly one bound.
    """
    for op, side in (("<=", "max"), (">=", "min")):
        if op in text:
            metric, _, bound = text.partition(op)
            metric = metric.strip()
            try:
                value = float(bound.strip())
            except ValueError:
                raise ValueError(
                    f"requirement {text!r}: bound {bound.strip()!r} is not "
                    f"a number"
                ) from None
            return Objective(metric=metric, **{side: value})
    raise ValueError(
        f"requirement {text!r} must look like 'metric<=value' or "
        f"'metric>=value'"
    )


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectiveResult:
    """Pass/fail of one objective against one snapshot."""

    objective: Objective
    value: Optional[float]  # None when the metric is absent
    passed: bool

    @property
    def reason(self) -> str:
        """One-line explanation of the verdict."""
        o = self.objective
        if self.value is None:
            return (f"{o.metric}: MISSING from snapshot "
                    f"(wanted {o.bound_text})")
        verdict = "ok" if self.passed else "VIOLATED"
        return f"{o.metric}: {self.value:g} {o.bound_text}  [{verdict}]"


@dataclass(frozen=True)
class SloResult:
    """Outcome of evaluating a spec against a snapshot."""

    spec: SloSpec
    results: Tuple[ObjectiveResult, ...]

    @property
    def passed(self) -> bool:
        """Whether every objective held."""
        return all(r.passed for r in self.results)

    @property
    def n_violations(self) -> int:
        """Objectives that failed (missing metrics count as failures)."""
        return sum(1 for r in self.results if not r.passed)


def evaluate_slo(spec: SloSpec, doc: dict) -> SloResult:
    """Evaluate ``spec`` against a snapshot document.

    NaN values fail their objective (a quantile of an empty distribution
    is not evidence of meeting latency targets), as do missing metrics.
    """
    flat = flatten_metrics(doc)
    results = []
    for o in spec.objectives:
        value = flat.get(o.metric)
        if value is None or value != value:  # absent or NaN
            results.append(ObjectiveResult(o, None, passed=False))
            continue
        ok = ((o.max is None or value <= o.max)
              and (o.min is None or value >= o.min))
        results.append(ObjectiveResult(o, float(value), passed=ok))
    return SloResult(spec=spec, results=tuple(results))


def format_slo(result: SloResult) -> str:
    """Human-readable evaluation report."""
    spec = result.spec
    lines = [f"== SLO {spec.name} =="]
    if spec.description:
        lines.append(spec.description)
    for r in result.results:
        lines.append(f"  {r.reason}")
    lines.append(
        f"{'PASS' if result.passed else 'FAIL'}: "
        f"{len(result.results) - result.n_violations}/{len(result.results)} "
        f"objective(s) met"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI entry point (wired under ``repro obs slo`` by repro.obs.report)
# ----------------------------------------------------------------------


def cmd_slo(args) -> int:
    """``repro obs slo SNAPSHOT [--spec NAME|FILE] [--require M<=X ...]``"""
    try:
        doc = load_document(args.snapshot)
        objectives: List[Objective] = []
        if args.spec:
            spec = load_slo_spec(args.spec)
            objectives.extend(spec.objectives)
            name, description = spec.name, spec.description
        else:
            name, description = "ad-hoc", ""
        for text in args.require or []:
            objectives.append(parse_requirement(text))
        if not objectives:
            print("error: give --spec and/or at least one --require",
                  file=sys.stderr)
            return 2
        spec = SloSpec(name=name, description=description,
                       objectives=tuple(objectives))
    except UnsupportedSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = evaluate_slo(spec, doc)
    print(format_slo(result))
    return 0 if result.passed else 1
