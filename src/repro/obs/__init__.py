"""Unified observability: metrics, event tracing, and profiling.

Three cooperating pieces, all off by default and activated together
through a process-local session (:mod:`repro.obs.runtime`):

* :class:`MetricsRegistry` — named counters/gauges/histograms with
  ``snapshot()`` / ``reset()`` / JSON export (:mod:`repro.obs.metrics`);
* :class:`Tracer` — structured events in a ring buffer with an optional
  JSONL sink (:mod:`repro.obs.tracer`);
* :class:`Profiler` — nested ``span()`` wall-time aggregation
  (:mod:`repro.obs.profiler`).

Quickstart::

    from repro import obs

    with obs.observed(trace=True, profile=True) as session:
        flood(graph, source=0, ttl=4, replica_mask=mask)

    session.metrics.snapshot()["counters"]["search.flood.messages_sent"]
    session.tracer.events("flood.hop")      # per-hop fan-out sequence
    print(session.profiler.format_report())

See docs/OBSERVABILITY.md for the event schema and the metric name
catalogue.
"""

from repro.obs.health import (
    HealthConfig,
    HealthSample,
    HealthSampler,
    RuntimeSample,
    RuntimeSampler,
)
from repro.obs.metrics import (
    DEFAULT_EDGES,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.profiler import Profiler
from repro.obs.quantiles import LogHistogram, STANDARD_QUANTILES
from repro.obs.runtime import (
    ObsSession,
    active,
    configure,
    count,
    disable,
    event,
    gauge,
    is_enabled,
    observe,
    observed,
    quantile,
    record,
    span,
    tracing_active,
)
from repro.obs.timeseries import TimeSeries, merge_points
from repro.obs.tracer import (
    Tracer,
    event_sort_key,
    merge_events,
    merge_traces,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "STANDARD_QUANTILES",
    "TimeSeries",
    "MetricsRegistry",
    "DEFAULT_EDGES",
    "SCHEMA_VERSION",
    "diff_snapshots",
    "merge_points",
    "Tracer",
    "read_trace",
    "merge_traces",
    "merge_events",
    "event_sort_key",
    "Profiler",
    "ObsSession",
    "HealthConfig",
    "HealthSample",
    "HealthSampler",
    "RuntimeSample",
    "RuntimeSampler",
    "active",
    "configure",
    "disable",
    "observed",
    "is_enabled",
    "count",
    "gauge",
    "observe",
    "quantile",
    "record",
    "event",
    "span",
    "tracing_active",
]
