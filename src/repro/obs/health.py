"""Structural health sampling of a live overlay under churn.

The paper's resilience story (Figures 7/8) is that Makalu's local rating
function keeps the overlay expander-like *while nodes fail*.  Offline,
end-state analysis (:mod:`repro.analysis`) can only certify the overlay
after the fact; this module samples the same structural quantities
periodically on the *live* overlay — as time series — so a churn run's
health trajectory is observable and gateable (``repro obs diff``):

* connected-component count and largest-component fraction;
* degree-distribution statistics (mean / max / isolated fraction);
* node-boundary expansion of sampled neighborhoods (the quantity Makalu's
  rating maximizes locally), reusing :mod:`repro.analysis.expansion`;
* a spectral-gap estimate of the normalized Laplacian from a few power
  -iteration steps (cheap; collapses toward zero as the overlay frays);
* routing-state staleness: the fraction of attenuated-Bloom-filter
  aggregate entries (equivalently, nodes within the filter depth at build
  time) and host-cache entries that point at departed nodes.

Every sample is recorded into the active :class:`MetricsRegistry` as
``TimeSeries`` points keyed by virtual time, and returned as a
:class:`HealthSample` row.  The sampler owns a dedicated RNG stream:
enabling or disabling sampling never consumes randomness from the
simulation's streams, so trajectories stay bit-identical either way
(``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs import runtime as _obs
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of one health-sampling hook.

    ``interval`` is in the time units of whatever drives the sampler
    (virtual simulation time under churn, round index in construction
    loops); ``0`` disables sampling entirely.  ``n_sources`` bounds the
    per-sample BFS work for the expansion and staleness estimates;
    ``power_iters`` bounds the spectral-gap estimate's matvec count.
    """

    interval: float = 0.0
    n_sources: int = 8
    max_hop: int = 2
    filter_depth: int = 3
    power_iters: int = 24

    def __post_init__(self):
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.n_sources < 1:
            raise ValueError(f"n_sources must be >= 1, got {self.n_sources}")
        if self.max_hop < 1:
            raise ValueError(f"max_hop must be >= 1, got {self.max_hop}")
        if self.filter_depth < 1:
            raise ValueError(
                f"filter_depth must be >= 1, got {self.filter_depth}"
            )
        if self.power_iters < 1:
            raise ValueError(
                f"power_iters must be >= 1, got {self.power_iters}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration samples at all."""
        return self.interval > 0


@dataclass(frozen=True)
class HealthSample:
    """One structural health observation of the (online) overlay.

    ``filter_staleness`` / ``cache_staleness`` are NaN when the sampler has
    no reference graph / membership service to judge them against.
    """

    time: float
    n_online: int
    n_components: int
    largest_component_fraction: float
    mean_degree: float
    max_degree: int
    isolated_fraction: float
    expansion: float
    spectral_gap: float
    filter_staleness: float = float("nan")
    cache_staleness: float = float("nan")


def spectral_gap_estimate(
    graph, n_iters: int = 24, rng: SeedLike = None
) -> float:
    """Estimate the normalized-Laplacian spectral gap by power iteration.

    The exact gap (:func:`repro.analysis.spectral.spectral_gap`) needs a
    dense eigensolve — unusable inside a periodic sampler.  Instead,
    power-iterate ``M = 2I - L`` (eigenvalues ``2 - λ_i``, all >= 0) with
    the known top eigenvector ``D^{1/2}·1`` (eigenvalue 2, from λ₀ = 0)
    deflated; the Rayleigh quotient then converges toward ``2 - λ₁`` and
    the estimate is ``2 - rayleigh >= ~λ₁``.  A handful of iterations gives
    the trend that matters: a fragmenting overlay gains extra (near-)zero
    eigenvalues of ``L`` that deflation does not remove, so the estimate
    collapses toward zero exactly when expansion is lost.

    Deterministic for a given ``rng``; never touches global RNG state.
    """
    from repro.analysis.spectral import laplacian

    n = graph.n_nodes
    if n < 2:
        return 0.0
    if graph.n_edges == 0:
        return 0.0
    gen = as_generator(rng)
    lap = laplacian(graph, normalized=True)
    v0 = np.sqrt(graph.degrees.astype(np.float64))
    norm0 = np.linalg.norm(v0)
    if norm0 == 0.0:  # pragma: no cover - no edges is caught above
        return 0.0
    v0 /= norm0

    x = gen.standard_normal(n)
    x -= (v0 @ x) * v0
    for _ in range(n_iters):
        x = 2.0 * x - lap @ x
        x -= (v0 @ x) * v0  # re-deflate against floating-point drift
        norm = np.linalg.norm(x)
        if norm < 1e-300:
            # x started (numerically) inside the deflated subspace.
            return 0.0
        x /= norm
    rayleigh = x @ (2.0 * x - lap @ x)
    gap = 2.0 - float(rayleigh)
    # Round-off can push the estimate a hair outside [0, 2]; clamp.
    return min(max(gap, 0.0), 2.0)


def expansion_sample(
    graph, n_sources: int = 8, max_hop: int = 2, rng: SeedLike = None
) -> float:
    """Worst mean node-boundary expansion |∂B_h|/|B_h| over hops 1..max_hop.

    A cheap live counterpart of
    :func:`repro.analysis.expansion.expansion_profile` (which it reuses):
    BFS balls around ``n_sources`` sampled nodes, CSR frontier-vectorized.
    Returns 0.0 for graphs too small to expand.
    """
    from repro.analysis.expansion import expansion_profile

    if graph.n_nodes < 2:
        return 0.0
    profile = expansion_profile(
        graph, n_sources=n_sources, max_hops=max_hop, seed=as_generator(rng)
    )
    return profile.min_early_expansion(max_hop)


def neighborhood_staleness(
    reference,
    online: np.ndarray,
    depth: int = 3,
    n_sources: int = 16,
    rng: SeedLike = None,
) -> float:
    """Fraction of routing-filter aggregate entries pointing at departed nodes.

    A node's level-``i`` attenuated Bloom filter aggregates the content
    digests of nodes within ``i`` hops *at build time*
    (:mod:`repro.search.attenuated`); entries contributed by nodes that
    have since departed are stale routing state.  For a sample of
    currently-online nodes, BFS the *reference* overlay (the graph the
    filters were built on) to ``depth`` hops and measure the offline
    fraction of the reached nodes — exactly the stale-entry fraction of
    those nodes' filters.  The same figure bounds host-cache staleness
    when caches are fed by neighborhood gossip.

    Returns NaN when no sampled node has any in-reach filter entries.
    """
    from repro.analysis.bfs import bfs_hops

    online = np.asarray(online, dtype=bool)
    if online.size != reference.n_nodes:
        raise ValueError("online mask must cover the reference graph")
    candidates = np.flatnonzero(online)
    if candidates.size == 0:
        return float("nan")
    gen = as_generator(rng)
    k = min(n_sources, candidates.size)
    sources = gen.choice(candidates, size=k, replace=False)
    stale_fractions = []
    for s in sources:
        hops = bfs_hops(reference, int(s), max_hops=depth)
        reached = np.flatnonzero((hops >= 1) & (hops <= depth))
        if reached.size == 0:
            continue
        stale_fractions.append(float(np.mean(~online[reached])))
    if not stale_fractions:
        return float("nan")
    return float(np.mean(stale_fractions))


def cache_staleness(membership, online: np.ndarray) -> float:
    """Fraction of host-cache entries pointing at departed nodes.

    Exact (no sampling): every entry of every
    :class:`~repro.core.membership.HostCache` is checked against the live
    mask.  NaN when all caches are empty.
    """
    online = np.asarray(online, dtype=bool)
    total = stale = 0
    for cache in membership.caches:
        for peer in cache.peers():
            total += 1
            if not online[peer]:
                stale += 1
    return stale / total if total else float("nan")


class HealthSampler:
    """Periodic structural-health sampler for a live overlay.

    Passive by design: the owner (churn simulation, Makalu refinement
    loop, a test) calls :meth:`sample` whenever its own clock says so; the
    sampler computes the health quantities, records each into the active
    obs session as a ``TimeSeries`` point under ``<prefix>.*``, appends a
    :class:`HealthSample` row to :attr:`samples`, and emits one
    ``<prefix>.sample`` trace event.  With no obs session active the rows
    still accumulate, so library users get trajectories without
    configuring observability.

    The sampler draws only from its own ``rng``; hand it a dedicated
    spawned stream (as :class:`~repro.sim.churn.ChurnSimulation` does) and
    it cannot perturb the simulation it watches.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        rng: SeedLike = None,
        prefix: str = "health",
    ):
        self.config = config if config is not None else HealthConfig()
        self.rng = as_generator(rng)
        self.prefix = prefix
        self.samples: List[HealthSample] = []
        #: Overlay snapshot the routing filters were (notionally) built on;
        #: set via :meth:`set_reference` to enable staleness sampling.
        self.reference = None

    def set_reference(self, graph) -> None:
        """Fix the filter-build-time overlay used for staleness sampling."""
        self.reference = graph

    def sample(
        self,
        t: float,
        graph,
        online: Optional[np.ndarray] = None,
        membership=None,
    ) -> HealthSample:
        """Measure the overlay's health at time ``t`` and record it.

        ``graph`` is the full overlay; ``online`` an optional liveness
        mask (all-online when None).  Structural quantities are computed
        on the induced online subgraph; staleness against
        :attr:`reference` / ``membership``.
        """
        cfg = self.config
        with _obs.span("health.sample"):
            if online is None:
                sub, n_online = graph, graph.n_nodes
            else:
                online = np.asarray(online, dtype=bool)
                sub, _ = graph.subgraph(online)
                n_online = int(np.count_nonzero(online))

            if sub.n_nodes:
                n_comp, labels = sub.connected_components()
                largest = float(np.bincount(labels).max() / sub.n_nodes)
                degs = sub.degrees
                mean_deg = float(degs.mean())
                max_deg = int(degs.max())
                isolated = float(np.mean(degs == 0))
                expansion = expansion_sample(
                    sub, n_sources=cfg.n_sources, max_hop=cfg.max_hop,
                    rng=self.rng,
                )
                gap = spectral_gap_estimate(
                    sub, n_iters=cfg.power_iters, rng=self.rng
                )
            else:  # pragma: no cover - everyone offline simultaneously
                n_comp, largest, mean_deg, max_deg = 0, 0.0, 0.0, 0
                isolated, expansion, gap = 0.0, 0.0, 0.0

            filter_stale = float("nan")
            if self.reference is not None and online is not None:
                filter_stale = neighborhood_staleness(
                    self.reference, online, depth=cfg.filter_depth,
                    n_sources=cfg.n_sources, rng=self.rng,
                )
            cache_stale = float("nan")
            if membership is not None and online is not None:
                cache_stale = cache_staleness(membership, online)

        row = HealthSample(
            time=float(t),
            n_online=n_online,
            n_components=n_comp,
            largest_component_fraction=largest,
            mean_degree=mean_deg,
            max_degree=max_deg,
            isolated_fraction=isolated,
            expansion=expansion,
            spectral_gap=gap,
            filter_staleness=filter_stale,
            cache_staleness=cache_stale,
        )
        self.samples.append(row)
        self._record(row)
        return row

    def _record(self, row: HealthSample) -> None:
        p, t = self.prefix, row.time
        _obs.count(f"{p}.samples")
        _obs.record(f"{p}.online_nodes", t, row.n_online)
        _obs.record(f"{p}.n_components", t, row.n_components)
        _obs.record(
            f"{p}.largest_component_fraction", t,
            row.largest_component_fraction,
        )
        _obs.record(f"{p}.mean_degree", t, row.mean_degree)
        _obs.record(f"{p}.max_degree", t, row.max_degree)
        _obs.record(f"{p}.isolated_fraction", t, row.isolated_fraction)
        _obs.record(f"{p}.expansion", t, row.expansion)
        _obs.record(f"{p}.spectral_gap", t, row.spectral_gap)
        if not np.isnan(row.filter_staleness):
            _obs.record(f"{p}.filter_staleness", t, row.filter_staleness)
        if not np.isnan(row.cache_staleness):
            _obs.record(f"{p}.cache_staleness", t, row.cache_staleness)
        _obs.event(
            f"{p}.sample", t=t, online=row.n_online,
            components=row.n_components,
            largest=row.largest_component_fraction,
            expansion=row.expansion, gap=row.spectral_gap,
        )


@dataclass(frozen=True)
class RuntimeSample:
    """One runtime-telemetry observation of a set of live peers.

    Totals aggregate every peer's
    :meth:`repro.node.peer.PeerNode.runtime_stats` row; ``loop_lag_s``
    is the shared event loop's scheduling lag (how late a timed
    callback fired), NaN when the driver did not measure it.
    """

    time: float
    peers: int
    loop_lag_s: float
    degree_total: float
    route_table_total: float
    seen_table_total: float
    pending_frame_bytes_total: float
    queries_open_total: float
    rx_bytes_total: float
    tx_bytes_total: float


class RuntimeSampler:
    """Periodic runtime-telemetry sampler for live asyncio peers.

    The process-level counterpart of :class:`HealthSampler`: where that
    one watches overlay *structure*, this one watches the *runtime* —
    event-loop lag, socket byte counters, route/seen-table and
    pending-frame-buffer occupancy — on the same passive model.  The
    owner (:class:`repro.node.boot.LiveOverlay`'s telemetry task, or a
    test) calls :meth:`sample` on its own clock with each peer's
    ``runtime_stats()`` dict; the sampler records ``TimeSeries`` points
    and gauges under ``<prefix>.*`` plus a ``<prefix>.loop_lag_s``
    quantile histogram, and appends a :class:`RuntimeSample` row.

    Metrics go to an explicit :class:`MetricsRegistry` when one is
    given (a live overlay's telemetry registry, merged alongside the
    per-peer ``node.*`` registries); otherwise to the process-global
    obs session, where no-session means rows-only — same contract as
    :class:`HealthSampler`.
    """

    def __init__(self, registry=None, prefix: str = "node.runtime"):
        self.registry = registry
        self.prefix = prefix
        self.samples: List[RuntimeSample] = []

    def _record_point(self, name: str, t: float, value: float) -> None:
        if self.registry is not None:
            self.registry.timeseries(name).record(t, value)
        else:
            _obs.record(name, t, value)

    def _gauge(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name).set(value)
        else:
            _obs.gauge(name, value)

    def sample(
        self,
        t: float,
        peer_stats,
        loop_lag_s: float = float("nan"),
    ) -> RuntimeSample:
        """Aggregate one telemetry observation at time ``t``.

        ``peer_stats`` maps a peer ident to its ``runtime_stats()``
        dict (any mapping of stat name to float).  Timestamps follow
        the driver's clock — wall-clock seconds from the live overlay.
        """
        totals = {
            "degree": 0.0, "route_table": 0.0, "seen_table": 0.0,
            "pending_frame_bytes": 0.0, "queries_open": 0.0,
            "rx_bytes": 0.0, "tx_bytes": 0.0,
        }
        n_peers = 0
        for stats in peer_stats.values():
            n_peers += 1
            for key in totals:
                totals[key] += float(stats.get(key, 0.0))
        row = RuntimeSample(
            time=float(t),
            peers=n_peers,
            loop_lag_s=float(loop_lag_s),
            degree_total=totals["degree"],
            route_table_total=totals["route_table"],
            seen_table_total=totals["seen_table"],
            pending_frame_bytes_total=totals["pending_frame_bytes"],
            queries_open_total=totals["queries_open"],
            rx_bytes_total=totals["rx_bytes"],
            tx_bytes_total=totals["tx_bytes"],
        )
        self.samples.append(row)
        p = self.prefix
        if self.registry is not None:
            self.registry.counter(f"{p}.samples").inc()
        else:
            _obs.count(f"{p}.samples")
        for key, value in totals.items():
            # Trajectory under the plain name (HealthSampler convention),
            # latest value as a distinct gauge for report/top views.
            self._record_point(f"{p}.{key}", row.time, value)
            self._gauge(f"{p}.{key}.last", value)
        if not np.isnan(row.loop_lag_s):
            self._record_point(f"{p}.loop_lag_s", row.time, row.loop_lag_s)
            if self.registry is not None:
                self.registry.quantile(f"{p}.loop_lag_s.q").observe(
                    row.loop_lag_s
                )
            else:
                _obs.quantile(f"{p}.loop_lag_s.q", row.loop_lag_s)
        return row
