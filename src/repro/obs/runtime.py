"""Process-local observability session and the cheap instrumentation API.

The library is instrumented at fixed points (sim-engine dispatch, flood
hops, Makalu prune/accept, churn joins/leaves, ...) through the
module-level helpers here — :func:`count`, :func:`observe`, :func:`event`,
:func:`span` — which are **no-ops unless a session is active**.  The
disabled path is one global load and one ``is None`` test, so leaving the
instrumentation compiled into hot kernels costs well under the 5% budget
the benchmarks enforce.

Activation is explicit and process-local::

    from repro import obs

    with obs.observed(trace_path="run.jsonl", profile=True) as session:
        results = flood_queries(graph, placement, 100, ttl=4, seed=7)
    session.metrics.snapshot()   # counters the run produced
    session.profiler.format_report()

or imperatively with :func:`configure` / :func:`disable` (what the CLI's
``--metrics-json`` / ``--trace`` / ``--profile`` flags do).

Instrumentation never touches RNG streams or wall-clock-dependent logic,
so a seeded run produces bit-identical results with observability on or
off (``tests/obs/test_determinism.py`` enforces this).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from repro.obs.metrics import DEFAULT_EDGES, MetricsRegistry
from repro.obs.quantiles import DEFAULT_GROWTH, DEFAULT_MIN_VALUE
from repro.obs.profiler import NOOP_SPAN, Profiler
from repro.obs.tracer import Tracer


class ObsSession:
    """One activated observability configuration.

    ``metrics`` is always present; ``tracer`` and ``profiler`` are None
    unless requested, letting call sites skip event-dict construction when
    only counters are wanted.
    """

    __slots__ = ("metrics", "tracer", "profiler")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[Profiler] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.profiler = profiler

    def close(self) -> None:
        """Flush and close the tracer sink, if any."""
        if self.tracer is not None:
            self.tracer.close()


_ACTIVE: Optional[ObsSession] = None


def active() -> Optional[ObsSession]:
    """The currently active session, or None when observability is off."""
    return _ACTIVE


def is_enabled() -> bool:
    """Whether any observability session is active."""
    return _ACTIVE is not None


def configure(
    metrics: Optional[MetricsRegistry] = None,
    trace: Union[None, bool, str] = None,
    trace_capacity: int = 65536,
    profile: bool = False,
) -> ObsSession:
    """Activate observability for this process; returns the session.

    Parameters
    ----------
    metrics:
        Registry to record into (a fresh one by default).
    trace:
        ``True`` enables the in-memory ring buffer only; a string path
        additionally streams every event to that JSONL file; ``None``/
        ``False`` disables tracing.
    trace_capacity:
        Ring-buffer size when tracing is enabled.
    profile:
        Enable :func:`span` timers.

    Re-configuring replaces (and closes) any prior session.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    tracer = None
    if trace:
        sink = trace if isinstance(trace, str) else None
        tracer = Tracer(capacity=trace_capacity, sink=sink)
    _ACTIVE = ObsSession(
        metrics=metrics,
        tracer=tracer,
        profiler=Profiler() if profile else None,
    )
    return _ACTIVE


def disable() -> Optional[ObsSession]:
    """Deactivate observability; returns the session that was active.

    The session object stays usable afterwards (snapshots, reports), its
    tracer sink is flushed and closed.
    """
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    if session is not None:
        session.close()
    return session


@contextmanager
def observed(
    metrics: Optional[MetricsRegistry] = None,
    trace: Union[None, bool, str] = None,
    trace_capacity: int = 65536,
    profile: bool = False,
) -> Iterator[ObsSession]:
    """Context-manager form of :func:`configure` / :func:`disable`.

    The session's tracer sink is flushed and closed on exit even when the
    body raises, or when the body re-configured observability underneath
    us — a crashed simulation must still leave a readable (partial) JSONL
    trace behind.
    """
    session = configure(
        metrics=metrics, trace=trace, trace_capacity=trace_capacity,
        profile=profile,
    )
    try:
        yield session
    finally:
        if _ACTIVE is session:
            disable()
        else:
            session.close()


# ----------------------------------------------------------------------
# Instrumentation call sites use only the helpers below.  Each one's
# disabled path is a single global check.
# ----------------------------------------------------------------------


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` if a session is active."""
    s = _ACTIVE
    if s is not None:
        s.metrics.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` if a session is active."""
    s = _ACTIVE
    if s is not None:
        s.metrics.gauge(name).set(value)


def observe(
    name: str, value: float, edges: Sequence[float] = DEFAULT_EDGES
) -> None:
    """Record ``value`` in histogram ``name`` if a session is active."""
    s = _ACTIVE
    if s is not None:
        s.metrics.histogram(name, edges).observe(value)


def quantile(
    name: str,
    value: float,
    min_value: float = DEFAULT_MIN_VALUE,
    growth: float = DEFAULT_GROWTH,
) -> None:
    """Record ``value`` in quantile histogram ``name`` if a session is
    active (see :mod:`repro.obs.quantiles` for the geometry params)."""
    s = _ACTIVE
    if s is not None:
        s.metrics.quantile(name, min_value, growth).observe(value)


def record(name: str, t: float, value: float) -> None:
    """Append ``(t, value)`` to time series ``name`` if a session is active."""
    s = _ACTIVE
    if s is not None:
        s.metrics.timeseries(name).record(t, value)


def event(kind: str, **fields) -> None:
    """Emit a trace event if a session with tracing is active.

    Callers on hot paths should prefer ``tracing_active()`` +  a local
    tracer reference to avoid building the kwargs dict when disabled;
    this helper is for warm paths where that does not matter.
    """
    s = _ACTIVE
    if s is not None and s.tracer is not None:
        s.tracer.emit(kind, **fields)


def tracing_active() -> Optional[Tracer]:
    """The active tracer, or None — for hoisting out of hot loops."""
    s = _ACTIVE
    return s.tracer if s is not None else None


def span(name: str):
    """Timer context manager; a shared no-op unless profiling is active."""
    s = _ACTIVE
    if s is not None and s.profiler is not None:
        return s.profiler.span(name)
    return NOOP_SPAN
