"""Structured event tracer: bounded ring buffer plus optional JSONL sink.

Instrumented code emits flat dict events (``kind`` plus free-form fields);
the tracer stamps each with a monotonically increasing ``seq`` so traces
from one run totally order, even across subsystems.  The ring buffer keeps
the most recent ``capacity`` events for in-process inspection (tests,
post-mortem on assertion failures); the JSONL sink, when given, persists
*every* event regardless of ring capacity.

Event schema (one JSON object per line in the sink)::

    {"seq": 17, "kind": "flood.hop", "source": 3, "hop": 2,
     "sent": 118, "new": 97, "dup": 21}

``seq`` and ``kind`` are guaranteed; everything else is emitter-defined
(documented per-kind in docs/OBSERVABILITY.md).  Values are coerced to
plain JSON types on emit, so numpy scalars are safe to pass.

``seq`` is **per-tracer** monotonic: it totally orders one tracer's
events, but two tracers (e.g. parallel shards each writing their own
JSONL sink) restart from zero, so a naive concatenation has ambiguous
ties.  Give each tracer an ``ident`` and every event carries it as
``src``; :func:`merge_traces` then orders a set of trace files
deterministically by ``(t, src, seq)`` — virtual time when events carry
one, identity then sequence as tie-breakers — so a merged trace is
byte-stable regardless of file order.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Optional, Union

from repro.obs.metrics import _jsonable


class Tracer:
    """Ring-buffered structured event recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are dropped (and counted in
        :attr:`dropped`) once the buffer is full.  The JSONL sink is not
        subject to the capacity.
    sink:
        Optional path (or open text file) receiving one JSON line per
        event.  Lines are written on emit; call :meth:`close` (or use the
        CLI/ runtime helpers, which do) to flush.
    ident:
        Optional tracer identity (e.g. ``"shard2"``).  When set, every
        event is stamped with it as ``src``, which is what lets
        :func:`merge_traces` break ``seq`` ties deterministically when
        combining traces from several tracers.
    """

    def __init__(
        self, capacity: int = 65536, sink: Union[None, str, IO[str]] = None,
        ident: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.ident = ident
        self._buf: List[dict] = []
        self._start = 0  # ring read position once the buffer wraps
        self._seq = 0
        self.dropped = 0
        self._owns_sink = isinstance(sink, str)
        self._sink: Optional[IO[str]] = (
            open(sink, "w") if isinstance(sink, str) else sink
        )

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the stamped event dict."""
        event = {"seq": self._seq, "kind": kind}
        if self.ident is not None:
            event["src"] = self.ident
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self._seq += 1
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=_jsonable))
            self._sink.write("\n")
        return event

    @property
    def emitted(self) -> int:
        """Total events emitted (including any dropped from the ring)."""
        return self._seq

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Buffered events, oldest first, optionally filtered by kind."""
        ordered = self._buf[self._start:] + self._buf[: self._start]
        if kind is None:
            return ordered
        return [e for e in ordered if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events())

    def clear(self) -> None:
        """Empty the ring buffer (sequence numbers keep increasing)."""
        self._buf.clear()
        self._start = 0
        self.dropped = 0

    def flush(self) -> None:
        """Flush the JSONL sink, if any."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink (only if this tracer opened it)."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str, kind: Optional[str] = None) -> List[dict]:
    """Load a JSONL trace written by a :class:`Tracer` sink.

    Blank lines are skipped; events come back as plain dicts in file
    order (which is emit order).  ``kind`` filters to one event kind.
    """
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if kind is None or event.get("kind") == kind:
                events.append(event)
    return events


def merge_traces(*paths: str, kind: Optional[str] = None) -> List[dict]:
    """Combine several JSONL traces into one deterministically ordered list.

    Events order by ``(t, src, seq)``: virtual time first when present
    (events without a ``t`` sort ahead, as pure-causal events), then
    tracer identity (``src``, empty when the tracer had no ``ident``),
    then the per-tracer ``seq``.  The sort is stable, so
    events that tie on all three keep their input order.  This gives a
    byte-stable merged trace regardless of the order the shard files are
    passed in — the fix for per-tracer ``seq`` restarting at zero in
    every shard.
    """
    events: List[dict] = []
    for path in paths:
        events.extend(read_trace(path, kind=kind))
    events.sort(
        key=lambda e: (
            float(e["t"]) if "t" in e else float("-inf"),
            str(e.get("src", "")),
            int(e.get("seq", 0)),
        )
    )
    return events
