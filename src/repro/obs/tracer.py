"""Structured event tracer: bounded ring buffer plus optional JSONL sink.

Instrumented code emits flat dict events (``kind`` plus free-form fields);
the tracer stamps each with a monotonically increasing ``seq`` so traces
from one run totally order, even across subsystems.  The ring buffer keeps
the most recent ``capacity`` events for in-process inspection (tests,
post-mortem on assertion failures); the JSONL sink, when given, persists
*every* event regardless of ring capacity.

Event schema (one JSON object per line in the sink)::

    {"seq": 17, "kind": "flood.hop", "source": 3, "hop": 2,
     "sent": 118, "new": 97, "dup": 21}

``seq`` and ``kind`` are guaranteed; everything else is emitter-defined
(documented per-kind in docs/OBSERVABILITY.md).  Values are coerced to
plain JSON types on emit, so numpy scalars are safe to pass.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Optional, Union

from repro.obs.metrics import _jsonable


class Tracer:
    """Ring-buffered structured event recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are dropped (and counted in
        :attr:`dropped`) once the buffer is full.  The JSONL sink is not
        subject to the capacity.
    sink:
        Optional path (or open text file) receiving one JSON line per
        event.  Lines are written on emit; call :meth:`close` (or use the
        CLI/ runtime helpers, which do) to flush.
    """

    def __init__(
        self, capacity: int = 65536, sink: Union[None, str, IO[str]] = None
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: List[dict] = []
        self._start = 0  # ring read position once the buffer wraps
        self._seq = 0
        self.dropped = 0
        self._owns_sink = isinstance(sink, str)
        self._sink: Optional[IO[str]] = (
            open(sink, "w") if isinstance(sink, str) else sink
        )

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the stamped event dict."""
        event = {"seq": self._seq, "kind": kind}
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self._seq += 1
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=_jsonable))
            self._sink.write("\n")
        return event

    @property
    def emitted(self) -> int:
        """Total events emitted (including any dropped from the ring)."""
        return self._seq

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Buffered events, oldest first, optionally filtered by kind."""
        ordered = self._buf[self._start:] + self._buf[: self._start]
        if kind is None:
            return ordered
        return [e for e in ordered if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events())

    def clear(self) -> None:
        """Empty the ring buffer (sequence numbers keep increasing)."""
        self._buf.clear()
        self._start = 0
        self.dropped = 0

    def flush(self) -> None:
        """Flush the JSONL sink, if any."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink (only if this tracer opened it)."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str, kind: Optional[str] = None) -> List[dict]:
    """Load a JSONL trace written by a :class:`Tracer` sink.

    Blank lines are skipped; events come back as plain dicts in file
    order (which is emit order).  ``kind`` filters to one event kind.
    """
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if kind is None or event.get("kind") == kind:
                events.append(event)
    return events
