"""Structured event tracer: bounded ring buffer plus optional JSONL sink.

Instrumented code emits flat dict events (``kind`` plus free-form fields);
the tracer stamps each with a monotonically increasing ``seq`` so traces
from one run totally order, even across subsystems.  The ring buffer keeps
the most recent ``capacity`` events for in-process inspection (tests,
post-mortem on assertion failures); the JSONL sink, when given, persists
*every* event regardless of ring capacity.

Event schema (one JSON object per line in the sink)::

    {"seq": 17, "kind": "flood.hop", "source": 3, "hop": 2,
     "sent": 118, "new": 97, "dup": 21}

``seq`` and ``kind`` are guaranteed; everything else is emitter-defined
(documented per-kind in docs/OBSERVABILITY.md).  Values are coerced to
plain JSON types on emit, so numpy scalars are safe to pass.

``seq`` is **per-tracer** monotonic: it totally orders one tracer's
events, but two tracers (e.g. parallel shards each writing their own
JSONL sink) restart from zero, so a naive concatenation has ambiguous
ties.  Give each tracer an ``ident`` and every event carries it as
``src``; :func:`merge_traces` then orders a set of trace files
deterministically by ``(t, src, seq)`` — time when events carry one,
identity then sequence as tie-breakers — so a merged trace is
byte-stable regardless of file order.

Two timebases flow through the same ``t`` field and must not be mixed
within one merge:

* **virtual** — simulator event time (latency-model seconds from the
  start of the run).  This is the default; events carry no marker.
* **wall** — live-runtime wall-clock seconds (``time.time()``).  A
  tracer constructed with ``timebase="wall"`` stamps every event with
  ``t`` at emit plus ``tb: "wall"`` so downstream tooling (merging,
  Chrome export) can label lanes with the correct timebase instead of
  silently conflating the two.

Wall-clock ties are real — several asyncio peers in one process can
observe the same ``time.time()`` float — so :func:`merge_traces` breaks
them by ``src`` (numeric idents compare numerically: peer ``"10"``
sorts after ``"2"``) and then per-tracer ``seq``, which makes the merged
order deterministic even for simultaneous events.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import _jsonable


def event_sort_key(event: dict) -> Tuple:
    """Deterministic total order for trace events: ``(t, src, seq)``.

    ``t`` first (events without one sort ahead as pure-causal events);
    then ``src`` with *natural* ordering — all-digit idents compare as
    integers so live peer ``"10"`` lands after ``"2"``, not between
    ``"1"`` and ``"2"`` — with non-numeric idents after numeric ones in
    plain string order; then the per-tracer ``seq``.
    """
    src = str(event.get("src", ""))
    if src.isdigit():
        src_key = (0, int(src), "")
    else:
        src_key = (1, 0, src)
    return (
        float(event["t"]) if "t" in event else float("-inf"),
        src_key,
        int(event.get("seq", 0)),
    )


class Tracer:
    """Ring-buffered structured event recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are dropped (and counted in
        :attr:`dropped`) once the buffer is full.  The JSONL sink is not
        subject to the capacity.
    sink:
        Optional path (or open text file) receiving one JSON line per
        event.  Lines are written on emit; call :meth:`close` (or use the
        CLI/ runtime helpers, which do) to flush.
    ident:
        Optional tracer identity (e.g. ``"shard2"`` or a live peer's
        node id).  When set, every event is stamped with it as ``src``,
        which is what lets :func:`merge_traces` break ``seq`` ties
        deterministically when combining traces from several tracers.
    timebase:
        ``None`` (default) leaves timestamps entirely to the emitter —
        the simulator passes virtual ``t`` explicitly.  ``"wall"``
        stamps every event with ``t = time.time()`` (unless the emitter
        already supplied a ``t``) plus ``tb: "wall"``, marking the trace
        as wall-clock so merge/export tooling never silently mixes it
        with virtual-time traces.
    """

    def __init__(
        self, capacity: int = 65536, sink: Union[None, str, IO[str]] = None,
        ident: Optional[str] = None, timebase: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if timebase not in (None, "wall"):
            raise ValueError(f"timebase must be None or 'wall', got {timebase!r}")
        self.capacity = capacity
        self.ident = ident
        self.timebase = timebase
        self._buf: List[dict] = []
        self._start = 0  # ring read position once the buffer wraps
        self._seq = 0
        self.dropped = 0
        self._owns_sink = isinstance(sink, str)
        self._sink: Optional[IO[str]] = (
            open(sink, "w") if isinstance(sink, str) else sink
        )

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the stamped event dict."""
        event = {"seq": self._seq, "kind": kind}
        if self.ident is not None:
            event["src"] = self.ident
        if self.timebase == "wall":
            t = fields.pop("t", None)
            event["t"] = time.time() if t is None else float(t)
            event["tb"] = "wall"
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self._seq += 1
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=_jsonable))
            self._sink.write("\n")
        return event

    @property
    def emitted(self) -> int:
        """Total events emitted (including any dropped from the ring)."""
        return self._seq

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Buffered events, oldest first, optionally filtered by kind."""
        ordered = self._buf[self._start:] + self._buf[: self._start]
        if kind is None:
            return ordered
        return [e for e in ordered if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events())

    def clear(self) -> None:
        """Empty the ring buffer (sequence numbers keep increasing)."""
        self._buf.clear()
        self._start = 0
        self.dropped = 0

    def flush(self) -> None:
        """Flush the JSONL sink, if any."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink (only if this tracer opened it)."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str, kind: Optional[str] = None) -> List[dict]:
    """Load a JSONL trace written by a :class:`Tracer` sink.

    Blank lines are skipped; events come back as plain dicts in file
    order (which is emit order).  ``kind`` filters to one event kind.
    """
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if kind is None or event.get("kind") == kind:
                events.append(event)
    return events


def merge_events(
    *event_lists: Iterable[dict], kind: Optional[str] = None,
) -> List[dict]:
    """Merge in-memory event lists into one :func:`event_sort_key` order.

    The in-process counterpart of :func:`merge_traces` — live overlays
    hand over each peer tracer's ring buffer directly instead of going
    through JSONL files.  The sort is stable, so events that tie on all
    three keys keep their input order.
    """
    events: List[dict] = []
    for batch in event_lists:
        if kind is None:
            events.extend(batch)
        else:
            events.extend(e for e in batch if e.get("kind") == kind)
    events.sort(key=event_sort_key)
    return events


def merge_traces(*paths: str, kind: Optional[str] = None) -> List[dict]:
    """Combine several JSONL traces into one deterministically ordered list.

    Events order by :func:`event_sort_key` — ``(t, src, seq)``: time
    first when present (events without a ``t`` sort ahead, as
    pure-causal events), then tracer identity (``src``, natural order
    for numeric idents, empty when the tracer had no ``ident``), then
    the per-tracer ``seq``.  The sort is stable, so events that tie on
    all three keep their input order.  This gives a byte-stable merged
    trace regardless of the order the shard files are passed in — the
    fix for per-tracer ``seq`` restarting at zero in every shard.

    Live (wall-clock) sinks tie for real: peers in one process can
    observe identical ``time.time()`` floats, and the ``(src, seq)``
    tie-break is what keeps the merged order deterministic run to run.
    Do not merge wall-clock (``tb: "wall"``) and virtual-time traces in
    one call — the ``t`` axes are incomparable.
    """
    return merge_events(
        *(read_trace(path, kind=kind) for path in paths)
    )
