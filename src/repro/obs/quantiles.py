"""Streaming latency histograms with log-spaced buckets (HDR-style).

The fixed-edge :class:`~repro.obs.metrics.Histogram` is built for small
integer distributions (messages per query, hop depths); latency wants
*relative* resolution across many orders of magnitude — 1 ms and 10 s in
one instrument — plus quantile readout.  A :class:`LogHistogram` buckets
positive observations geometrically: bucket ``i`` covers
``(min_value * growth**(i-1), min_value * growth**i]``, so every quantile
read back is correct to within a factor of ``growth`` (5% at the default
1.05), independent of scale.

Design constraints match the rest of the metrics layer:

* **Deterministic** — no clocks, no RNG; observing is a log, a compare
  and an add.
* **Mergeable** — two histograms with the same ``(min_value, growth)``
  geometry combine by summing bucket counts.  Bucket counts, ``count``,
  ``zeros`` and the ``min``/``max`` envelope merge associatively and
  commutatively bit-for-bit — so every quantile readout of a merged run
  is independent of shard grouping — which is what lets
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` recombine
  parallel shards (:mod:`repro.parallel.runner`) in any grouping.
  ``sum`` is float accumulation and associative only to rounding, the
  same caveat as fixed-bucket histogram sums.
* **Exact envelope** — ``sum``/``count``/``min``/``max`` are tracked
  exactly, so means are exact and quantile readouts are clamped into the
  truly observed range (p999 of a merged run never exceeds the largest
  value any shard saw).

Snapshot form (``schemas/metrics_snapshot.schema.json``, version 3)::

    {"quantiles": {"queue.response_s": {
        "min_value": 1e-6, "growth": 1.05, "zeros": 0,
        "counts": [..], "sum": 12.5, "count": 100,
        "min": 0.004, "max": 2.75}}}

Zero observations (a source node resolving its own query) land in the
dedicated ``zeros`` bucket; negative observations are instrumentation
bugs and raise.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

Number = Union[int, float]

#: Default geometry: 5% relative quantile error, resolving down to 1 µs.
DEFAULT_MIN_VALUE = 1e-6
DEFAULT_GROWTH = 1.05

#: Quantiles the SLO/report layers read out by default.
STANDARD_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class LogHistogram:
    """Streaming distribution with geometric buckets and quantile readout.

    Parameters
    ----------
    min_value:
        Upper bound of the first bucket; positive observations at or
        below it are recorded there (resolution floor).
    growth:
        Geometric bucket width factor (> 1).  The relative error of any
        quantile readout is bounded by ``growth - 1``.
    """

    __slots__ = ("name", "min_value", "growth", "_log_growth", "_log_min",
                 "zeros", "counts", "sum", "count", "min", "max")

    def __init__(
        self,
        name: str,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
    ):
        if not min_value > 0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if not growth > 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.name = name
        self.min_value = float(min_value)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self._log_min = math.log(self.min_value)
        self.zeros = 0
        self.counts: List[int] = []
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _bucket_index(self, v: float) -> int:
        """Bucket of a positive observation (0 covers ``(0, min_value]``)."""
        if v <= self.min_value:
            return 0
        # ceil() of the exact exponent; the epsilon guards values that sit
        # numerically on a bucket edge from spilling one bucket up.
        exponent = (math.log(v) - self._log_min) / self._log_growth
        return max(0, math.ceil(exponent - 1e-12))

    def bucket_upper_bound(self, index: int) -> float:
        """Inclusive upper value bound of bucket ``index``."""
        return self.min_value * self.growth ** index

    def observe(self, v: Number) -> None:
        """Record one observation (must be >= 0 and finite)."""
        v = float(v)
        if not (v >= 0.0 and math.isfinite(v)):
            raise ValueError(
                f"quantile histogram {self.name!r} takes finite values >= 0, "
                f"got {v}"
            )
        if v == 0.0:
            self.zeros += 1
        else:
            i = self._bucket_index(v)
            if i >= len(self.counts):
                self.counts.extend([0] * (i + 1 - len(self.counts)))
            self.counts[i] += 1
        self.sum += v
        self.count += 1
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Exact mean of all observations (nan when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (nan when empty).

        The readout is the containing bucket's upper bound, clamped into
        the exactly-tracked ``[min, max]`` envelope — so the relative
        error is at most ``growth - 1`` and extreme quantiles of sparse
        data degrade to the true extremes rather than bucket edges.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = max(1, math.ceil(q * self.count))
        cum = self.zeros
        if target <= cum:
            return 0.0
        value = None
        for i, c in enumerate(self.counts):
            cum += c
            if target <= cum:
                value = self.bucket_upper_bound(i)
                break
        if value is None:  # q == 1 with rounding dust; take the top bucket
            value = self.bucket_upper_bound(len(self.counts) - 1)
        return min(max(value, self.min), self.max)

    @property
    def p50(self) -> float:
        """Median readout."""
        return self.quantile(0.5)

    @property
    def p90(self) -> float:
        """90th-percentile readout."""
        return self.quantile(0.9)

    @property
    def p99(self) -> float:
        """99th-percentile readout."""
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        """99.9th-percentile readout."""
        return self.quantile(0.999)

    def state(self) -> dict:
        """Plain-data snapshot form (the ``quantiles`` schema section)."""
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "zeros": int(self.zeros),
            "counts": list(self.counts),
            "sum": float(self.sum),
            "count": int(self.count),
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        The geometries must agree exactly — merging differently-bucketed
        distributions would silently misplace counts.
        """
        if (float(state["min_value"]) != self.min_value
                or float(state["growth"]) != self.growth):
            raise ValueError(
                f"quantile histogram {self.name!r} geometry disagrees "
                f"(min_value/growth); cannot merge"
            )
        other = [int(c) for c in state["counts"]]
        if len(other) > len(self.counts):
            self.counts.extend([0] * (len(other) - len(self.counts)))
        for i, c in enumerate(other):
            self.counts[i] += c
        self.zeros += int(state["zeros"])
        self.sum += float(state["sum"])
        self.count += int(state["count"])
        for key, pick in (("min", min), ("max", max)):
            v = state.get(key)
            if v is not None:
                mine = getattr(self, key)
                setattr(self, key, float(v) if mine is None
                        else pick(mine, float(v)))

    def reset(self) -> None:
        """Zero all counts, keeping the geometry."""
        self.zeros = 0
        self.counts = []
        self.sum = 0.0
        self.count = 0
        self.min = None
        self.max = None


def quantiles_of_state(state: dict, qs=STANDARD_QUANTILES) -> dict:
    """Quantile readouts of a snapshot-form state, keyed ``"p50"`` style.

    This is how the report/SLO/flatten layers read quantiles out of JSON
    artifacts without rebuilding an instrument by hand.
    """
    hist = LogHistogram(
        "readout", min_value=state["min_value"], growth=state["growth"]
    )
    hist.merge_state(state)
    return {
        "p" + format(q, "g").replace("0.", "").ljust(2, "0"): hist.quantile(q)
        for q in qs
    }


def merge_states(a: dict, b: dict) -> dict:
    """Combine two snapshot-form states (associative and commutative)."""
    hist = LogHistogram(
        "merge", min_value=a["min_value"], growth=a["growth"]
    )
    hist.merge_state(a)
    hist.merge_state(b)
    return hist.state()
