"""Lightweight span profiler: where did the wall-clock go?

``span("phase")`` context managers nest; each distinct *path* of nested
names (``makalu.build/makalu.refine``) aggregates call count, total and
self time.  That keeps the report a tree rather than a flat histogram, so
"time in rating during refinement" and "time in rating during join" stay
separate lines.

Timers use :func:`time.perf_counter` only — never the RNG, never wall
dates — so profiling a seeded run cannot perturb its results (only its
speed: each active span costs two clock reads).
"""

from __future__ import annotations

import time
from typing import Dict, List


class _Span:
    """One active timer; returned by :meth:`Profiler.span`."""

    __slots__ = ("profiler", "name", "path", "t0", "child_time")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self.path = ""
        self.t0 = 0.0
        self.child_time = 0.0

    def __enter__(self) -> "_Span":
        stack = self.profiler._stack
        prefix = stack[-1].path + "/" if stack else ""
        self.path = prefix + self.name
        self.child_time = 0.0
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        elapsed = t1 - self.t0
        stack = self.profiler._stack
        stack.pop()
        if stack:
            stack[-1].child_time += elapsed
        self.profiler._record(self.path, elapsed, elapsed - self.child_time)
        self.profiler._record_timeline(self.path, self.t0, t1)


class _NoopSpan:
    """Shared do-nothing span for disabled profiling (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Profiler:
    """Aggregates nested span timings by path.

    Beyond the per-path aggregates, a bounded *timeline* keeps the first
    ``timeline_capacity`` completed spans as ``(path, start_s, end_s)``
    records (``perf_counter`` seconds) so a run's phase structure can be
    exported to Chrome's ``chrome://tracing`` format (``repro obs
    export-trace``).  Overflow is counted in :attr:`timeline_dropped`
    rather than silently discarded.
    """

    def __init__(self, timeline_capacity: int = 65536):
        if timeline_capacity < 0:
            raise ValueError(
                f"timeline_capacity must be >= 0, got {timeline_capacity}"
            )
        # path -> [calls, total_seconds, self_seconds]
        self._totals: Dict[str, List[float]] = {}
        self._stack: List[_Span] = []
        self.timeline_capacity = timeline_capacity
        self.timeline: List[tuple] = []
        self.timeline_dropped = 0

    def _record_timeline(self, path: str, start: float, end: float) -> None:
        if len(self.timeline) < self.timeline_capacity:
            self.timeline.append((path, start, end))
        else:
            self.timeline_dropped += 1

    def timeline_report(self) -> List[dict]:
        """Completed spans as plain dicts: ``{path, start_s, end_s}``."""
        return [
            {"path": path, "start_s": start, "end_s": end}
            for path, start, end in self.timeline
        ]

    def span(self, name: str) -> _Span:
        """Context manager timing one region under the current nesting."""
        if "/" in name:
            raise ValueError(f"span names cannot contain '/': {name!r}")
        return _Span(self, name)

    def _record(self, path: str, total: float, self_time: float) -> None:
        entry = self._totals.get(path)
        if entry is None:
            self._totals[path] = [1, total, self_time]
        else:
            entry[0] += 1
            entry[1] += total
            entry[2] += self_time

    def report(self) -> Dict[str, dict]:
        """Per-path aggregates: ``{path: {calls, total_s, self_s}}``."""
        return {
            path: {"calls": int(c), "total_s": t, "self_s": s}
            for path, (c, t, s) in sorted(self._totals.items())
        }

    def reset(self) -> None:
        """Drop all aggregates and the timeline (open spans keep timing)."""
        self._totals.clear()
        self.timeline.clear()
        self.timeline_dropped = 0

    def format_report(self) -> str:
        """Human-readable table, children indented under parents."""
        if not self._totals:
            return "profile: no spans recorded"
        lines = ["profile (per-phase wall time):",
                 f"  {'span':<40} {'calls':>7} {'total s':>9} {'self s':>9}"]
        for path, (calls, total, self_s) in sorted(self._totals.items()):
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label:<40} {int(calls):>7} {total:>9.3f} {self_s:>9.3f}"
            )
        return "\n".join(lines)
