"""Lightweight span profiler: where did the wall-clock go?

``span("phase")`` context managers nest; each distinct *path* of nested
names (``makalu.build/makalu.refine``) aggregates call count, total and
self time.  That keeps the report a tree rather than a flat histogram, so
"time in rating during refinement" and "time in rating during join" stay
separate lines.

Timers use :func:`time.perf_counter` only — never the RNG, never wall
dates — so profiling a seeded run cannot perturb its results (only its
speed: each active span costs two clock reads).
"""

from __future__ import annotations

import time
from typing import Dict, List


class _Span:
    """One active timer; returned by :meth:`Profiler.span`."""

    __slots__ = ("profiler", "name", "path", "t0", "child_time")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self.path = ""
        self.t0 = 0.0
        self.child_time = 0.0

    def __enter__(self) -> "_Span":
        stack = self.profiler._stack
        prefix = stack[-1].path + "/" if stack else ""
        self.path = prefix + self.name
        self.child_time = 0.0
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self.t0
        stack = self.profiler._stack
        stack.pop()
        if stack:
            stack[-1].child_time += elapsed
        self.profiler._record(self.path, elapsed, elapsed - self.child_time)


class _NoopSpan:
    """Shared do-nothing span for disabled profiling (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Profiler:
    """Aggregates nested span timings by path."""

    def __init__(self):
        # path -> [calls, total_seconds, self_seconds]
        self._totals: Dict[str, List[float]] = {}
        self._stack: List[_Span] = []

    def span(self, name: str) -> _Span:
        """Context manager timing one region under the current nesting."""
        if "/" in name:
            raise ValueError(f"span names cannot contain '/': {name!r}")
        return _Span(self, name)

    def _record(self, path: str, total: float, self_time: float) -> None:
        entry = self._totals.get(path)
        if entry is None:
            self._totals[path] = [1, total, self_time]
        else:
            entry[0] += 1
            entry[1] += total
            entry[2] += self_time

    def report(self) -> Dict[str, dict]:
        """Per-path aggregates: ``{path: {calls, total_s, self_s}}``."""
        return {
            path: {"calls": int(c), "total_s": t, "self_s": s}
            for path, (c, t, s) in sorted(self._totals.items())
        }

    def reset(self) -> None:
        """Drop all aggregates (open spans keep timing)."""
        self._totals.clear()

    def format_report(self) -> str:
        """Human-readable table, children indented under parents."""
        if not self._totals:
            return "profile: no spans recorded"
        lines = ["profile (per-phase wall time):",
                 f"  {'span':<40} {'calls':>7} {'total s':>9} {'self s':>9}"]
        for path, (calls, total, self_s) in sorted(self._totals.items()):
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label:<40} {int(calls):>7} {total:>9.3f} {self_s:>9.3f}"
            )
        return "\n".join(lines)
