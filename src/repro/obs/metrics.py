"""Process-local metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): instrumented code increments named instruments, and a
``snapshot()`` turns the whole registry into plain JSON-serializable data
that benchmarks embed in their reports and the CLI writes with
``--metrics-json``.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Code never talks to a registry
   directly unless one is active (see :mod:`repro.obs.runtime`); the
   instruments themselves are ``__slots__`` objects whose hot methods do one
   add.
2. **Deterministic.**  Instruments never read clocks or RNGs, so enabling
   metrics cannot perturb a seeded simulation.
3. **Mergeable.**  Snapshots are plain dicts of numbers;
   :func:`diff_snapshots` subtracts one from another so a benchmark can
   report "metrics during this phase" without resetting global state.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.obs.quantiles import DEFAULT_GROWTH, DEFAULT_MIN_VALUE, LogHistogram
from repro.obs.timeseries import TimeSeries, merge_points

Number = Union[int, float]

#: Version stamped on (and required of) metric snapshots.  Version 2 added
#: the ``timeseries`` section; version 3 added ``quantiles`` (streaming
#: log-bucket latency histograms, :mod:`repro.obs.quantiles`).
#: ``merge_snapshot``/``diff_snapshots`` still accept version-1/2
#: snapshots (the newer sections are simply absent).
SCHEMA_VERSION = 3

#: Default histogram bucket upper bounds (powers of two cover message
#: counts, fan-outs and hop depths across the scales the harness runs).
DEFAULT_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


def _jsonable(value):
    """Coerce numpy scalars/arrays so snapshots dump with plain ``json``."""
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class Counter:
    """Monotonically increasing count (messages sent, prunes, events)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += int(n)


class Gauge:
    """Last-write-wins numeric level (online nodes, frontier size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: Number) -> None:
        """Set the gauge to ``v``."""
        self.value = float(v)

    def inc(self, n: Number = 1) -> None:
        """Adjust the gauge by ``n`` (may be negative)."""
        self.value += float(n)


class Histogram:
    """Fixed-bucket distribution (per-query messages, span durations).

    ``edges`` are inclusive upper bounds of the finite buckets; observations
    above the last edge land in the overflow bucket, so ``counts`` has
    ``len(edges) + 1`` entries.  ``sum``/``count`` allow exact means even
    though bucket boundaries quantize the rest of the distribution.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: Number) -> None:
        """Record one observation."""
        v = float(v)
        self.counts[bisect_left(self.edges, v)] += 1
        self.sum += v
        self.count += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (nan when empty)."""
        return self.sum / self.count if self.count else float("nan")


class MetricsRegistry:
    """Name-keyed collection of instruments with get-or-create semantics.

    Asking for the same name twice returns the same instrument; asking for
    a name already registered as a different instrument type raises, since
    that is always an instrumentation bug.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES
    ) -> Histogram:
        """Get or create the histogram ``name`` (edges fixed at creation)."""
        return self._get(name, Histogram, edges)

    def timeseries(self, name: str) -> TimeSeries:
        """Get or create the time series ``name``."""
        return self._get(name, TimeSeries)

    def quantile(
        self,
        name: str,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
    ) -> LogHistogram:
        """Get or create the quantile histogram ``name`` (geometry fixed
        at creation)."""
        return self._get(name, LogHistogram, min_value, growth)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Plain-data view of every instrument, grouped by kind.

        The layout is the JSONL/CLI export schema
        (``schemas/metrics_snapshot.schema.json``)::

            {"schema_version": 3,
             "counters":   {name: int},
             "gauges":     {name: float},
             "histograms": {name: {"edges": [...], "counts": [...],
                                   "sum": float, "count": int}},
             "quantiles":  {name: {"min_value": float, "growth": float,
                                   "zeros": int, "counts": [...],
                                   "sum": float, "count": int,
                                   "min": float|null, "max": float|null}},
             "timeseries": {name: {"points": [[t, value], ...]}}}
        """
        counters, gauges, histograms, timeseries = {}, {}, {}, {}
        quantiles = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = _jsonable(inst.value)
            elif isinstance(inst, Gauge):
                gauges[name] = float(inst.value)
            elif isinstance(inst, TimeSeries):
                timeseries[name] = {
                    "points": [[t, v] for t, v in inst.points]
                }
            elif isinstance(inst, LogHistogram):
                quantiles[name] = inst.state()
            else:
                histograms[name] = {
                    "edges": list(inst.edges),
                    "counts": list(inst.counts),
                    "sum": float(inst.sum),
                    "count": int(inst.count),
                }
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "quantiles": quantiles,
            "timeseries": timeseries,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram counts/sums add; gauges are last-write-wins
        (levels from another process do not accumulate).  This is how the
        parallel runner (:mod:`repro.parallel`) recombines worker-process
        metrics into the parent session so totals match a single-process
        run.  Histogram bucket edges must agree with any instrument
        already registered under the same name.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, h in snap.get("histograms", {}).items():
            inst = self.histogram(name, tuple(h["edges"]))
            if list(inst.edges) != [float(e) for e in h["edges"]]:
                raise ValueError(
                    f"histogram {name!r} bucket edges disagree; cannot merge"
                )
            inst.counts = [a + b for a, b in zip(inst.counts, h["counts"])]
            inst.sum += float(h["sum"])
            inst.count += int(h["count"])
        for name, q in snap.get("quantiles", {}).items():
            self.quantile(
                name, min_value=q["min_value"], growth=q["growth"]
            ).merge_state(q)
        for name, ts in snap.get("timeseries", {}).items():
            inst = self.timeseries(name)
            inst.points = merge_points(inst.points, ts["points"])

    def reset(self) -> None:
        """Zero every instrument, keeping registrations (and edges)."""
        for inst in self._instruments.values():
            if isinstance(inst, Counter):
                inst.value = 0
            elif isinstance(inst, Gauge):
                inst.value = 0.0
            elif isinstance(inst, TimeSeries):
                inst.points = []
            elif isinstance(inst, LogHistogram):
                inst.reset()
            else:
                inst.counts = [0] * (len(inst.edges) + 1)
                inst.sum = 0.0
                inst.count = 0

    def write_json(self, path: str, indent: Optional[int] = 2) -> None:
        """Write :meth:`snapshot` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=indent, default=_jsonable)
            fh.write("\n")


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-instrument change between two snapshots of the same registry.

    Counters and histogram/quantile counts/sums subtract (``after -
    before``; a counter absent from ``before`` diffs against zero); gauges
    report the ``after`` value (levels do not accumulate); quantile
    min/max keep ``after``'s envelope; time series report the
    points appended since ``before`` (series are append-only, so the tail
    beyond ``before``'s length is the phase's samples).  Useful for
    bracketing one phase of a longer run without resetting shared state.
    """
    out = {
        "schema_version": SCHEMA_VERSION,
        "counters": {},
        "gauges": dict(after.get("gauges", {})),
        "histograms": {},
        "quantiles": {},
        "timeseries": {},
    }
    b_c = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        out["counters"][name] = value - b_c.get(name, 0)
    b_h = before.get("histograms", {})
    for name, h in after.get("histograms", {}).items():
        prev = b_h.get(
            name, {"counts": [0] * len(h["counts"]), "sum": 0.0, "count": 0}
        )
        out["histograms"][name] = {
            "edges": list(h["edges"]),
            "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
            "sum": h["sum"] - prev["sum"],
            "count": h["count"] - prev["count"],
        }
    b_q = before.get("quantiles", {})
    for name, q in after.get("quantiles", {}).items():
        prev = b_q.get(name)
        if prev is None:
            out["quantiles"][name] = {k: (list(v) if isinstance(v, list)
                                          else v) for k, v in q.items()}
            continue
        counts = list(q["counts"])
        for i, c in enumerate(prev["counts"][: len(counts)]):
            counts[i] -= c
        # min/max are not subtractable; the phase inherits the envelope
        # observed by ``after`` (conservative, never narrower than truth).
        out["quantiles"][name] = {
            "min_value": q["min_value"],
            "growth": q["growth"],
            "zeros": q["zeros"] - prev.get("zeros", 0),
            "counts": counts,
            "sum": q["sum"] - prev.get("sum", 0.0),
            "count": q["count"] - prev.get("count", 0),
            "min": q.get("min"),
            "max": q.get("max"),
        }
    b_t = before.get("timeseries", {})
    for name, ts in after.get("timeseries", {}).items():
        skip = len(b_t.get(name, {"points": []})["points"])
        out["timeseries"][name] = {"points": [list(p) for p in ts["points"][skip:]]}
    return out
