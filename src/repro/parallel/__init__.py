"""Process-parallel search execution (sharding + batching).

* :mod:`repro.parallel.runner` — :func:`run_queries` (shared-memory flood
  executor) and :func:`map_shards` (generic shard mapper);
* :mod:`repro.parallel.shared_graph` — zero-copy CSR sharing between the
  parent and its worker processes.

See ``docs/API.md`` ("Parallel execution") for the determinism and
shared-memory lifecycle guarantees.
"""

from repro.parallel.runner import (
    DEFAULT_BATCH_SIZE,
    ParallelRunResult,
    default_workers,
    map_shards,
    run_queries,
)
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ParallelRunResult",
    "default_workers",
    "map_shards",
    "run_queries",
    "SharedGraph",
    "SharedGraphHandle",
]
