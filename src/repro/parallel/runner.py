"""Process-parallel query execution with exact recombination.

Two layers:

* :func:`run_queries` — the flooding executor.  The overlay's CSR arrays
  go into shared memory (:mod:`repro.parallel.shared_graph`), the query
  workload is split into contiguous shards, and each worker advances its
  shard through the batched kernel
  (:func:`repro.search.batch.flood_batch`).  Per-query results come back
  in workload order and are bit-identical to the scalar loop.
* :func:`map_shards` — a generic shard mapper used by the identifier and
  two-tier drivers, whose per-query state (Bloom filters, QRP tables) is
  cheap enough to pickle once per shard.

Both layers handle observability the same way: when the parent process has
an active :mod:`repro.obs` session, each worker opens a fresh metrics-only
session, runs its shard, and ships the metric snapshot back; the parent
folds every snapshot into its own registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`).  Counter and
histogram totals therefore match a single-process run exactly.  Trace
events and profiler spans are per-process and are *not* transported.

Determinism: the workload (sources, objects, and any per-query generators)
is always drawn in the parent before sharding, so results do not depend on
``n_workers``, ``batch_size``, or scheduling.  Shards also receive
dedicated ``SeedSequence.spawn`` children (shard ``i`` of any run with the
same root seed sees the same child), so mechanisms that consume randomness
in flight stay reproducible per shard; flooding itself consumes none.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs
from repro.search.flooding import FloodResult, draw_query_workload
from repro.search.metrics import SearchSummary, summarize
from repro.search.replication import Placement
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator

#: Queries advanced per kernel invocation inside each worker.  Large enough
#: to amortize the per-level numpy overhead, small enough that the per-batch
#: ``(batch, n_nodes)`` replica-mask block stays in cache-friendly territory
#: at paper scale.
DEFAULT_BATCH_SIZE = 64


def default_workers() -> int:
    """Worker count used when callers pass ``n_workers=0`` (one per core)."""
    return max(1, os.cpu_count() or 1)


def _start_method() -> str:
    """Prefer fork (cheap, shares imports); fall back to spawn elsewhere."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _shard_bounds(n: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` split of ``range(n)``."""
    n_shards = max(1, min(n_shards, n))
    edges = np.linspace(0, n, n_shards + 1, dtype=np.int64)
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]


def _root_seed_seq(seed: SeedLike) -> np.random.SeedSequence:
    """The SeedSequence shard children are spawned from."""
    gen = as_generator(seed)
    seq = gen.bit_generator.seed_seq
    if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
        seq = np.random.SeedSequence(int(gen.integers(0, 2**63)))
    return seq


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _reset_worker_obs(obs_on: bool) -> None:
    """Replace any session inherited through fork with a fresh one.

    The inherited session must not be ``close()``d — its tracer may hold a
    file descriptor shared with the parent — so it is simply dropped.
    """
    _obs._ACTIVE = None
    if obs_on:
        _obs.configure()


def _init_flood_worker(
    handle: SharedGraphHandle, placement: Placement, ttl: int,
    batch_size: int, obs_on: bool, faults=None,
) -> None:
    _reset_worker_obs(obs_on)
    _WORKER["graph"] = handle.attach()
    _WORKER["placement"] = placement
    _WORKER["ttl"] = ttl
    _WORKER["batch_size"] = batch_size
    _WORKER["faults"] = faults


def _run_flood_shard(spec):
    """Flood one shard batch-by-batch; returns results + summary + metrics."""
    from repro.search.batch import flood_batch, placement_masks

    index, sources, objects, _seed_seq, keys = spec
    graph, placement = _WORKER["graph"], _WORKER["placement"]
    ttl, batch_size = _WORKER["ttl"], _WORKER["batch_size"]
    faults = _WORKER.get("faults")
    results: list[FloodResult] = []
    for start in range(0, sources.size, batch_size):
        chunk = slice(start, start + batch_size)
        results.extend(
            flood_batch(
                graph, sources[chunk], ttl,
                replica_masks=placement_masks(placement, objects[chunk]),
                # Loss keys are the *global* workload indices carried in
                # the shard spec — never shard-local positions — so drop
                # decisions are invariant under n_workers (the
                # keyed-per-query convention).
                faults=faults,
                query_keys=keys[chunk],
            )
        )
    summary = summarize([r.record() for r in results])
    session = _obs.active()
    snapshot = session.metrics.snapshot() if session is not None else None
    return index, results, summary, snapshot


def _init_map_worker(obs_on: bool) -> None:
    _reset_worker_obs(obs_on)


def _run_map_shard(arg):
    fn, payload = arg
    out = fn(payload)
    session = _obs.active()
    snapshot = session.metrics.snapshot() if session is not None else None
    return out, snapshot


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelRunResult:
    """Recombined outcome of a sharded query run.

    ``results`` is in workload (query) order and bit-identical to the
    scalar loop.  ``summary`` is re-summarized from the concatenated
    per-query records, so every field — exact percentiles included —
    matches a single-process run.  ``shard_summaries`` are the per-shard
    aggregates; ``SearchSummary.merge(shard_summaries)`` recombines their
    counts and means exactly (see its docstring for the p95 caveat).
    """

    results: list[FloodResult]
    summary: SearchSummary
    shard_summaries: list[SearchSummary]
    n_workers: int

    @property
    def merged_summary(self) -> SearchSummary:
        """The shard summaries recombined via :meth:`SearchSummary.merge`."""
        return SearchSummary.merge(self.shard_summaries)


def run_queries(
    graph: OverlayGraph,
    placement: Placement,
    n_queries: int,
    ttl: int,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
    objects: Optional[np.ndarray] = None,
    n_workers: int = 0,
    batch_size: Optional[int] = None,
    faults=None,
) -> ParallelRunResult:
    """Run a flooding query workload sharded across worker processes.

    Parameters
    ----------
    seed, sources:
        Workload selection, with the same semantics (and RNG consumption)
        as :func:`repro.search.flooding.flood_queries`; ``objects`` may be
        given alongside ``sources`` to replay an exact workload instead.
    n_workers:
        Worker processes; ``0`` means one per CPU core, ``1`` runs the
        batched kernel in-process (no pool, no shared memory) — useful as
        the deterministic reference in equivalence tests.
    batch_size:
        Kernel batch width within each shard (default
        :data:`DEFAULT_BATCH_SIZE`).
    faults:
        Optional :class:`~repro.faults.link.LinkFaults` message-loss
        environment, keyed by global workload index so results stay
        bit-identical across worker counts.

    The graph's CSR arrays travel through shared memory; only the handle,
    the placement, and each shard's slice of the workload are pickled.
    """
    if objects is None:
        sources, objects = draw_query_workload(
            graph, placement, n_queries, seed=seed, sources=sources
        )
    else:
        sources = np.asarray(sources, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if sources.size != n_queries or objects.size != n_queries:
            raise ValueError("sources/objects must have one entry per query")
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        n_workers = default_workers()

    bounds = _shard_bounds(n_queries, n_workers)
    shard_seqs = _root_seed_seq(seed).spawn(len(bounds))
    specs = [
        (i, sources[a:b], objects[a:b], shard_seqs[i],
         np.arange(a, b, dtype=np.int64))
        for i, (a, b) in enumerate(bounds)
    ]
    session = _obs.active()

    if n_workers == 1 or len(specs) == 1:
        _init_flood_worker_inline = dict(_WORKER)
        _WORKER.update(
            graph=graph, placement=placement, ttl=ttl, batch_size=batch_size,
            faults=faults,
        )
        try:
            shard_outs = [_run_flood_shard(s)[:3] + (None,) for s in specs]
        finally:
            _WORKER.clear()
            _WORKER.update(_init_flood_worker_inline)
    else:
        ctx = mp.get_context(_start_method())
        with SharedGraph(graph) as shared:
            with ctx.Pool(
                processes=min(n_workers, len(specs)),
                initializer=_init_flood_worker,
                initargs=(shared.handle, placement, ttl, batch_size,
                          session is not None, faults),
            ) as pool:
                shard_outs = pool.map(_run_flood_shard, specs)

    shard_outs.sort(key=lambda t: t[0])
    results = [r for _, rs, _, _ in shard_outs for r in rs]
    shard_summaries = [s for _, _, s, _ in shard_outs]
    if session is not None:
        for _, _, _, snapshot in shard_outs:
            if snapshot is not None:
                session.metrics.merge_snapshot(snapshot)
    return ParallelRunResult(
        results=results,
        summary=summarize([r.record() for r in results]),
        shard_summaries=shard_summaries,
        n_workers=n_workers,
    )


def map_shards(
    fn: Callable, payloads: Sequence, n_workers: int
) -> list:
    """Run ``fn(payload)`` for every payload, optionally across processes.

    ``fn`` must be a module-level callable (pickled by reference) and each
    payload self-contained.  Results come back in payload order.  Worker
    metric snapshots are merged into the parent's active obs session, the
    same contract as :func:`run_queries`.
    """
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        n_workers = default_workers()
    if n_workers == 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]
    session = _obs.active()
    ctx = mp.get_context(_start_method())
    with ctx.Pool(
        processes=min(n_workers, len(payloads)),
        initializer=_init_map_worker,
        initargs=(session is not None,),
    ) as pool:
        outs = pool.map(_run_map_shard, [(fn, p) for p in payloads])
    if session is not None:
        for _, snapshot in outs:
            if snapshot is not None:
                session.metrics.merge_snapshot(snapshot)
    return [out for out, _ in outs]
