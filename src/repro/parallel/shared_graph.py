"""Zero-copy overlay sharing across worker processes.

An :class:`~repro.topology.graph.OverlayGraph` is three contiguous numpy
arrays (``indptr``, ``indices``, ``latency``).  Pickling them to every
worker of a process pool copies the whole topology per worker — at paper
scale (100k nodes, ~1M directed entries) that is tens of megabytes of
serialization per fork.  :class:`SharedGraph` instead places each array in
a :mod:`multiprocessing.shared_memory` block once; workers receive only the
block *names* (a :class:`SharedGraphHandle`, a few hundred bytes) and map
the same physical pages.

Lifecycle contract:

* the parent creates :class:`SharedGraph` (ideally via ``with``), launches
  workers, and finally calls :meth:`SharedGraph.close` — which unlinks the
  blocks.  Blocks outlive crashed workers but not the parent's ``close``;
* workers call :meth:`SharedGraphHandle.attach` once (typically in a pool
  initializer) and simply drop the returned graph when done — attached
  segments are unmapped at process exit, and only the parent unlinks.

Attached views are read-only (``OverlayGraph`` freezes its arrays), so
concurrent workers cannot race on the topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from repro.topology.graph import OverlayGraph


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for cleanup.

    ``SharedMemory(name=...)`` *attachment* also registers the segment with
    the resource tracker (fixed only in Python 3.13's ``track=False``).
    That is wrong for workers: forked children share the parent's tracker
    process, so a later ``unregister`` from one child would strip the
    parent's own registration, and spawned children would warn about — and
    may prematurely unlink — segments the parent still owns.  Suppressing
    the registration itself (rather than unregistering afterwards) leaves
    the tracker state exactly as the parent created it.
    """
    try:  # pragma: no cover - tracker internals vary across 3.10-3.12
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except Exception:
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable descriptor of a shared overlay (names + shapes only)."""

    n_nodes: int
    names: Tuple[str, str, str]  # indptr, indices, latency blocks
    sizes: Tuple[int, int, int]  # element counts, same order

    def attach(self) -> OverlayGraph:
        """Map the shared blocks and rebuild the overlay without copying.

        The returned graph's arrays alias the shared pages.  The
        ``SharedMemory`` objects are anchored in a process-level registry
        (``np.ndarray(buffer=...)`` does not keep them alive itself), so
        the mapping persists until process exit — the lifetime a pool
        worker needs.
        """
        arrays = []
        for name, size, dtype in zip(
            self.names, self.sizes, (np.int64, np.int64, np.float64)
        ):
            shm = _attach_untracked(name)
            _ATTACHED.append(shm)
            arrays.append(np.ndarray((size,), dtype=dtype, buffer=shm.buf))
        return OverlayGraph(*arrays)


#: Keeps attached segments mapped for the worker process's lifetime.
_ATTACHED: list = []


class SharedGraph:
    """Parent-side owner of the shared CSR blocks (context manager)."""

    def __init__(self, graph: OverlayGraph):
        self._blocks = []
        names, sizes = [], []
        for arr in (graph.indptr, graph.indices, graph.latency):
            shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[:] = arr
            self._blocks.append(shm)
            names.append(shm.name)
            sizes.append(arr.size)
        self.handle = SharedGraphHandle(
            n_nodes=graph.n_nodes, names=tuple(names), sizes=tuple(sizes)
        )

    def close(self) -> None:
        """Unmap and unlink every block (idempotent)."""
        blocks, self._blocks = self._blocks, []
        for shm in blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        self.close()
