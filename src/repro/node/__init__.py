"""Live asyncio node runtime speaking Gnutella v0.4 over TCP.

The deployable counterpart of the discrete-event simulator: real
sockets, real partial reads, real malformed peers.  Three layers:

* :mod:`repro.node.framer` — stream reassembly with the recoverable /
  unrecoverable decode-fault split (drop a frame vs. desync the link);
* :mod:`repro.node.peer` — one servent: handshake, crawler-ping
  neighborhood exchange, Makalu rating/prune maintenance, Query flood
  serving with reverse-path QueryHit routing, per-node metrics;
* :mod:`repro.node.boot` / :mod:`repro.node.parity` — boot N peers into
  a seeded topology, serve workloads to quiescence, and hold the live
  runtime against the simulator under ``repro obs diff``;
* :mod:`repro.node.trace` — reconstruct a flood's causal query tree
  (who forwarded to whom, at which hop, with per-hop latency) from the
  merged per-peer tracing events.

CLI entry points: ``repro node run`` / ``repro node boot`` /
``repro node parity`` / ``repro node trace`` (see README's
live-overlay quick start).
"""

from repro.node.boot import (
    LiveFloodResult,
    LiveOverlay,
    boot_and_flood,
    run_live_workload,
)
from repro.node.framer import DEFAULT_MAX_PAYLOAD, StreamFramer
from repro.node.parity import ParityReport, ParityScenario, run_parity
from repro.node.trace import (
    HopEdge,
    QueryTree,
    build_query_trees,
    format_tree_report,
)
from repro.node.peer import (
    LiveHit,
    LiveQuery,
    NodeConfig,
    PeerNode,
    criteria_for_key,
    ip_to_node,
    key_from_criteria,
    make_guid,
    node_ip,
)

__all__ = [
    "StreamFramer",
    "DEFAULT_MAX_PAYLOAD",
    "PeerNode",
    "NodeConfig",
    "LiveQuery",
    "LiveHit",
    "LiveOverlay",
    "LiveFloodResult",
    "boot_and_flood",
    "run_live_workload",
    "ParityScenario",
    "ParityReport",
    "run_parity",
    "make_guid",
    "node_ip",
    "ip_to_node",
    "criteria_for_key",
    "key_from_criteria",
    "HopEdge",
    "QueryTree",
    "build_query_trees",
    "format_tree_report",
]
