"""Replay a fault scenario against a *running* live overlay.

:class:`LiveChurnDriver` takes the same :class:`~repro.faults.scenario.
FaultScenario` schedules the simulation's injector consumes and executes
their crash/churn events against real asyncio peers: a crash is
:meth:`~repro.node.boot.LiveOverlay.kill_peer` (hard teardown, copies
gone), a rejoin is :meth:`~repro.node.boot.LiveOverlay.revive_peer`
(a fresh :class:`~repro.node.peer.PeerNode` bootstrapping through
``join()`` against the currently-running peers), and when a
:class:`~repro.content.live.LiveContent` plane rides along, every revive
triggers the same ``on_join`` rebalance and every heal interval the same
healing sweep the sim plane charges.

Scheduling is a virtual clock replayed on wall time: events (scenario
crashes, derived revives, heal ticks, durability snapshots) live in one
heap keyed ``(virtual time, sequence)`` and execute strictly in that
order, each followed by an overlay settle — so the *ordering* is
deterministic regardless of pacing.  ``time_scale`` stretches virtual
seconds into wall seconds between events (0 runs the schedule as fast as
the overlay settles).  Victim selection mirrors the simulation injector:
``top-degree`` ranks live peers by current link count (stable, ties
ascending id), ``random`` draws from the driver's seeded stream; modes
needing a transit-stub substrate (``stub-correlated``) and the wire-level
fault families the live plane cannot inject yet (loss windows, latency
spikes, partitions, stale views) are counted as skipped, never silently
dropped.  Rejoin delays are exponential draws with mean ``mean_offline``,
matching the simulation's offline-period model.

:func:`run_live_churn` is the canonical end-to-end experiment — the live
twin of :func:`repro.content.experiment.run_durability`, sharing its
corpus/placement seed salts — used by ``repro node churn`` and
``benchmarks/bench_live_churn.py``.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.content.live import LiveContent
from repro.content.plane import ContentConfig, DurabilityReport, DurabilitySample
from repro.faults.scenario import CrashEvent, FaultScenario
from repro.node.boot import LiveOverlay

#: Fault families the live driver cannot inject (yet); events of these
#: kinds are reported as skipped rather than silently ignored.
_UNSUPPORTED = (
    "loss_windows", "latency_spikes", "partitions", "stale_views",
)


@dataclass(frozen=True)
class LiveChurnEvent:
    """One executed membership event, stamped with its virtual time."""

    time: float
    kind: str  #: ``crash`` | ``revive`` | ``heal`` | ``snapshot``
    nodes: Tuple[int, ...] = ()
    #: Content pushes the event charged (rebalance or heal).
    pushes: int = 0


@dataclass
class LiveChurnReport:
    """What a scenario replay did to the running overlay."""

    scenario: str
    duration: float
    kills: int
    revives: int
    heal_ticks: int
    rebalance_pushes: int
    skipped: Dict[str, int]
    events: List[LiveChurnEvent] = field(repr=False)
    samples: List[DurabilitySample] = field(repr=False)
    durability: Optional[DurabilityReport] = None

    @property
    def events_skipped(self) -> int:
        """Total scenario events the live plane could not inject."""
        return sum(self.skipped.values())


class LiveChurnDriver:
    """Replay ``scenario`` against ``overlay`` (see module docstring).

    Parameters
    ----------
    overlay:
        A started :class:`LiveOverlay`.
    scenario:
        The fault schedule; only crash events (and the rejoins they
        imply) are injectable live.
    content:
        Optional live content plane: revives trigger ``on_join``
        rebalance, heal ticks run its sweep, snapshots sample
        durability.
    seed:
        Stream for random-mode victim draws and rejoin delays.
    duration:
        Virtual horizon; events scheduled beyond it never run.
    time_scale:
        Wall seconds per virtual second between events (0 = unpaced).
    mean_offline:
        Mean of the exponential offline period before a victim revives.
    snapshot_interval:
        Durability sampling period (0 samples only at the end; ignored
        without a content plane).
    """

    def __init__(
        self,
        overlay: LiveOverlay,
        scenario: FaultScenario,
        content: Optional[LiveContent] = None,
        seed: int = 0,
        duration: float = 150.0,
        time_scale: float = 0.0,
        mean_offline: float = 25.0,
        snapshot_interval: float = 0.0,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        if mean_offline <= 0:
            raise ValueError("mean_offline must be > 0")
        if snapshot_interval < 0:
            raise ValueError("snapshot_interval must be >= 0")
        self.overlay = overlay
        self.scenario = scenario
        self.content = content
        self.duration = float(duration)
        self.time_scale = float(time_scale)
        self.mean_offline = float(mean_offline)
        self.snapshot_interval = float(snapshot_interval)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------

    def _initial_schedule(self) -> Tuple[list, Dict[str, int]]:
        heap: list = []
        seq = 0

        def push(t: float, kind: str, payload=None):
            nonlocal seq
            heapq.heappush(heap, (float(t), seq, kind, payload))
            seq += 1

        skipped = {}
        for family in _UNSUPPORTED:
            n = len(getattr(self.scenario, family))
            if n:
                skipped[family] = n
        for ev in self.scenario.crashes:
            if ev.time > self.duration:
                continue
            if ev.mode == "stub-correlated":
                skipped["stub_correlated_crashes"] = (
                    skipped.get("stub_correlated_crashes", 0) + 1
                )
                continue
            push(ev.time, "crash", ev)
        if self.content is not None and self.content.config.heal_enabled:
            interval = self.content.config.heal_interval
            t = interval
            while t <= self.duration:
                push(t, "heal", None)
                t += interval
        if self.content is not None and self.snapshot_interval > 0:
            t = self.snapshot_interval
            while t < self.duration:
                push(t, "snapshot", None)
                t += self.snapshot_interval
        self._heap = heap
        self._seq = seq
        return heap, skipped

    def _push(self, t: float, kind: str, payload=None) -> None:
        heapq.heappush(self._heap, (float(t), self._seq, kind, payload))
        self._seq += 1

    def _pick_victims(self, ev: CrashEvent) -> List[int]:
        """The injector's victim policy, on live link-table degrees."""
        running = [n.node_id for n in self.overlay.nodes if n.running]
        k = int(round(ev.fraction * len(running)))
        if k == 0 or not running:
            return []
        if ev.mode == "top-degree":
            degs = {u: len(self.overlay.nodes[u].neighbors)
                    for u in running}
            order = sorted(running, key=lambda u: (-degs[u], u))
            return order[:k]
        arr = np.asarray(running, dtype=np.int64)
        picks = self._rng.choice(arr, size=k, replace=False)
        return sorted(int(v) for v in picks)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def run(self) -> LiveChurnReport:
        """Execute the schedule to ``duration``; returns the replay report.

        The overlay is left running (the caller owns teardown); when a
        content plane rides along the report carries its durability
        summary and the samples taken at each snapshot instant plus one
        final census at ``duration``.
        """
        heap, skipped = self._initial_schedule()
        events: List[LiveChurnEvent] = []
        kills = revives = heal_ticks = rebalance_pushes = 0
        now = 0.0
        while heap:
            t, _, kind, payload = heapq.heappop(heap)
            if t > self.duration:
                continue
            if self.time_scale > 0 and t > now:
                await asyncio.sleep((t - now) * self.time_scale)
            now = max(now, t)
            if kind == "crash":
                victims = self._pick_victims(payload)
                for v in victims:
                    await self.overlay.kill_peer(v)
                    kills += 1
                    if payload.rejoin:
                        delay = float(
                            self._rng.exponential(self.mean_offline)
                        )
                        self._push(t + delay, "revive", v)
                if victims:
                    events.append(LiveChurnEvent(
                        time=t, kind="crash", nodes=tuple(victims),
                    ))
            elif kind == "revive":
                v = payload
                if self.overlay.nodes[v].running:
                    continue  # superseded (already revived)
                await self.overlay.revive_peer(v)
                revives += 1
                pushes = 0
                if self.content is not None:
                    pushes = await self.content.on_join(v)
                    rebalance_pushes += pushes
                events.append(LiveChurnEvent(
                    time=t, kind="revive", nodes=(v,), pushes=pushes,
                ))
            elif kind == "heal":
                pushes = await self.content.heal()
                heal_ticks += 1
                events.append(LiveChurnEvent(
                    time=t, kind="heal", pushes=pushes,
                ))
            elif kind == "snapshot":
                self.content.record_sample(t)
                events.append(LiveChurnEvent(time=t, kind="snapshot"))
            await self.overlay.settle()
        durability = None
        samples: List[DurabilitySample] = []
        if self.content is not None:
            self.content.record_sample(self.duration)
            events.append(LiveChurnEvent(time=self.duration,
                                         kind="snapshot"))
            samples = list(self.content.samples)
            durability = self.content.durability_report()
        return LiveChurnReport(
            scenario=self.scenario.name, duration=self.duration,
            kills=kills, revives=revives, heal_ticks=heal_ticks,
            rebalance_pushes=rebalance_pushes, skipped=skipped,
            events=events, samples=samples, durability=durability,
        )


@dataclass
class LiveChurnResult:
    """One end-to-end live churn run: replay report + content ledger."""

    report: LiveChurnReport
    durability: DurabilityReport
    stats: Dict[str, int]
    overlay: LiveOverlay
    content: LiveContent


async def run_live_churn(
    scenario: FaultScenario,
    n_nodes: int = 32,
    n_objects: int = 12,
    seed: int = 1234,
    k: int = 3,
    duration: float = 150.0,
    time_scale: float = 0.0,
    heal_enabled: bool = True,
    heal_interval: float = 10.0,
    read_repair: bool = True,
    snapshot_interval: float = 25.0,
    mean_offline: float = 25.0,
    size_range: Tuple[int, int] = (2048, 8192),
) -> LiveChurnResult:
    """The canonical live churn experiment (one arm, real sockets).

    Builds the same seeded Makalu graph / corpus / placement
    :func:`~repro.content.experiment.run_durability` derives (shared
    seed salts, so sim and live arms at one seed study the same data),
    boots the overlay, replays ``scenario`` through a
    :class:`LiveChurnDriver`, and tears the overlay down.  The returned
    overlay/content keep their post-run state readable (metrics, stores,
    samples) exactly like :func:`repro.node.boot.boot_and_flood`.
    """
    from repro.content.experiment import build_placement

    graph, objects, placement = build_placement(
        n_nodes=n_nodes, n_objects=n_objects, seed=seed, k=k,
        size_range=size_range,
    )
    overlay = LiveOverlay(graph)
    await overlay.start()
    try:
        content = LiveContent(
            overlay, objects, placement,
            ContentConfig(
                k=k, heal_enabled=heal_enabled,
                heal_interval=heal_interval, read_repair=read_repair,
            ),
        )
        content.seed_stores()
        driver = LiveChurnDriver(
            overlay, scenario, content=content, seed=seed,
            duration=duration, time_scale=time_scale,
            mean_offline=mean_offline,
            snapshot_interval=snapshot_interval,
        )
        report = await driver.run()
    finally:
        await overlay.stop()
    return LiveChurnResult(
        report=report, durability=report.durability,
        stats=dict(content.stats), overlay=overlay, content=content,
    )


def run_live_churn_sync(*args, **kwargs) -> LiveChurnResult:
    """Synchronous wrapper around :func:`run_live_churn`."""
    return asyncio.run(run_live_churn(*args, **kwargs))
