"""A live asyncio Makalu peer speaking Gnutella v0.4 over TCP.

One :class:`PeerNode` is one servent: it listens on a real socket,
handshakes neighbors via Ping/Pong, learns neighbor neighborhoods with
2-hop crawler pings, runs the Makalu rating/prune maintenance of
:mod:`repro.core.rating` when over capacity, serves Query floods with
the protocol's TTL/hops forwarding rules and descriptor-ID duplicate
suppression, and routes QueryHits back along the reverse query path.

Identity on the wire stays within the four v0.4 descriptors: a node's
Pong carries its real listening port and a virtual ``10.x.y.z`` address
encoding its integer node id (:func:`node_ip` / :func:`ip_to_node`), so
peers recognize each other without any protocol extension.  Link
latencies are injected (``latency_to``) rather than measured — localhost
RTTs carry no signal, and the injected values are what make live ratings
comparable with the simulator's.

Handshake (both directions, symmetric):

1. on connect, each side sends a *hello* Ping with ``ttl=1`` (never
   forwarded);
2. each side answers any Ping with a Pong carrying its identity;
3. receiving the Pong for its own hello completes a side's handshake and
   registers the neighbor.

Neighborhood exchange — the ``Gamma(v)`` lists the rating function needs
— uses a *crawler* Ping with ``ttl=2``: the neighbor answers with its
own Pong (hops 0) and forwards the Ping one hop; its neighbors' Pongs
come back reverse-path with hops 1.

Every node owns a private :class:`~repro.obs.metrics.MetricsRegistry`
(the ``node.*`` counter catalogue) so a multi-node boot can merge
per-node snapshots exactly like the parallel runner merges worker
shards.

A node can also own a private :class:`~repro.obs.Tracer` (pass
``tracer=``, conventionally ``Tracer(ident=str(node_id),
timebase="wall")``).  With one, the peer emits the distributed-tracing
event catalogue — frame/handshake/crawl/prune lifecycle plus per-hop
``node.query.*`` events keyed by the descriptor ID's hex as the
trace/correlation ID — so merging every peer's events reconstructs a
flood's full causal tree with zero wire-format changes (the
descriptor ID already flows on every hop).  Without one, the same
events fall back to the process-global obs session, preserving the
single-node ``repro node run --trace`` behavior.  See
docs/OBSERVABILITY.md ("Live tracing") for the catalogue.
"""

from __future__ import annotations

import asyncio
import contextlib
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.content.manifest import IntegrityError, Manifest
from repro.content.store import ContentStore
from repro.core.rating import RatingWeights, rate_neighbors, worst_neighbor
from repro.node.framer import DEFAULT_MAX_PAYLOAD, StreamFramer
from repro.obs import runtime as _obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.protocol.messages import (
    WHOLE_OBJECT,
    ChunkData,
    ChunkRequest,
    ManifestData,
    Ping,
    Pong,
    Query,
    QueryHit,
    QueryHitResult,
)

_GUID_STRUCT = struct.Struct("<II8s")
_GUID_TAG = b"makalu\x00\x00"

#: Criteria prefix of an object lookup; the paper's searches are by
#: object identity, so a query carries ``key:<int64>``.
_KEY_PREFIX = "key:"


def make_guid(node_id: int, counter: int) -> bytes:
    """A 16-byte descriptor ID unique across the overlay.

    Deterministic — ``(node_id, counter)`` is the identity — so seeded
    live runs are replayable.
    """
    return _GUID_STRUCT.pack(node_id & 0xFFFFFFFF, counter & 0xFFFFFFFF,
                             _GUID_TAG)


def node_ip(node_id: int) -> Tuple[int, int, int, int]:
    """Virtual ``10.x.y.z`` address encoding a node id (< 2^24)."""
    if not 0 <= node_id < (1 << 24):
        raise ValueError(f"node_id must fit in 24 bits, got {node_id}")
    return (10, (node_id >> 16) & 0xFF, (node_id >> 8) & 0xFF, node_id & 0xFF)


def ip_to_node(ip: Tuple[int, int, int, int]) -> int:
    """Inverse of :func:`node_ip`."""
    return (ip[1] << 16) | (ip[2] << 8) | ip[3]


def criteria_for_key(key: int) -> str:
    """Wire search criteria of an object-key lookup."""
    return f"{_KEY_PREFIX}{key}"


def key_from_criteria(criteria: str) -> Optional[int]:
    """Object key of a query's criteria, or None for a free-text query."""
    if not criteria.startswith(_KEY_PREFIX):
        return None
    try:
        return int(criteria[len(_KEY_PREFIX):])
    except ValueError:
        return None


@dataclass(frozen=True)
class NodeConfig:
    """Tunables of one live peer."""

    #: Default TTL of originated queries.
    default_ttl: int = 7
    #: Crawler-ping TTL (2 = the neighbor and its one-hop neighborhood).
    crawl_ttl: int = 2
    #: Framer cap on a declared payload.
    max_payload: int = DEFAULT_MAX_PAYLOAD
    #: Recoverable decode faults tolerated per connection before the
    #: peer is dropped.
    decode_error_limit: int = 8
    #: Seconds to wait for a handshake Pong before giving up on a dial.
    handshake_timeout: float = 5.0
    #: Bound on the seen-descriptor and reverse-route tables.
    route_capacity: int = 16384
    #: Rating weights of the Makalu maintenance (paper: equal).
    weights: RatingWeights = field(default_factory=RatingWeights)

    def __post_init__(self):
        if self.default_ttl < 1:
            raise ValueError("default_ttl must be >= 1")
        if self.crawl_ttl < 1:
            raise ValueError("crawl_ttl must be >= 1")
        if self.decode_error_limit < 0:
            raise ValueError("decode_error_limit must be >= 0")
        if self.route_capacity < 1:
            raise ValueError("route_capacity must be >= 1")


@dataclass
class LiveHit:
    """One QueryHit received by the originating node."""

    server: int
    hops: int
    n_results: int


@dataclass
class LiveQuery:
    """Originator-side state of one flooded query."""

    descriptor_id: bytes
    key: int
    ttl: int
    self_hit: bool
    hits: List[LiveHit] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """Whether any replica (local or remote) was located."""
        return self.self_hit or bool(self.hits)

    @property
    def replicas_found(self) -> int:
        """Distinct replicas located (matches sim flood accounting)."""
        return len(self.hits) + (1 if self.self_hit else 0)

    @property
    def first_hit_hop(self) -> int:
        """Hop distance of the nearest located replica (-1 on failure).

        A hit served at depth ``d`` travels ``d - 1`` reverse-path
        forwards, so it arrives with ``hops == d - 1``.
        """
        if self.self_hit:
            return 0
        if not self.hits:
            return -1
        return min(h.hops for h in self.hits) + 1


class PeerConnection:
    """One TCP link to a peer, with its framer and handshake state."""

    def __init__(self, owner: "PeerNode", reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.owner = owner
        self.reader = reader
        self.writer = writer
        self.framer = StreamFramer(
            max_payload=owner.config.max_payload, tracer=owner.tracer,
        )
        peername = writer.get_extra_info("peername")
        self.remote_host: str = peername[0] if peername else "127.0.0.1"
        self.peer_id: Optional[int] = None
        self.peer_port: Optional[int] = None
        self.latency: float = 1.0
        self.handshaken = asyncio.Event()
        self.closed = False
        self.task: Optional[asyncio.Task] = None

    def send(self, message) -> None:
        """Queue one message on the link (never blocks; drops if closed)."""
        if self.closed:
            return
        data = message.encode()
        try:
            self.writer.write(data)
        except (ConnectionError, OSError, RuntimeError):
            self.closed = True
            return
        m = self.owner.metrics
        m.counter("node.tx.messages").inc()
        m.counter("node.tx.bytes").inc(len(data))
        if self.owner.tracer is not None:
            self.owner.tracer.emit(
                "node.tx", type=type(message).__name__.lower(),
                peer=-1 if self.peer_id is None else self.peer_id,
                bytes=len(data),
            )


class PeerNode:
    """One live Makalu servent.

    Parameters
    ----------
    node_id:
        Integer identity, < 2^24 (it must fit the virtual address).
    capacity:
        Makalu degree capacity; ``None`` disables prune maintenance
        (useful when an external launcher owns the topology).
    store:
        Object keys this node holds replicas of.
    content:
        Optional :class:`~repro.content.store.ContentStore` with the
        actual chunk bytes behind :attr:`store`'s keys.  With one, the
        node serves ``ChunkRequest`` (0x30) transfers and ingests pushed
        ``ManifestData``/``ChunkData`` frames — completing an object
        automatically advertises its key in :attr:`store`.  Without one,
        the content descriptors are counted and ignored.
    latency_to:
        ``v -> d(u, v)`` injected link latency, the rating function's
        proximity input.  Defaults to unit latency.
    tracer:
        Optional private :class:`~repro.obs.Tracer` receiving this
        peer's distributed-tracing events (conventionally
        ``Tracer(ident=str(node_id), timebase="wall")``).  Without one,
        events fall back to the process-global obs session.
    """

    def __init__(
        self,
        node_id: int,
        capacity: Optional[int] = None,
        store: Optional[Set[int]] = None,
        content: Optional[ContentStore] = None,
        latency_to: Optional[Callable[[int], float]] = None,
        config: Optional[NodeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        node_ip(node_id)  # validates the range
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.node_id = node_id
        self.capacity = capacity
        self.store: Set[int] = set(store or ())
        self.content = content
        self.latency_to = latency_to or (lambda v: 1.0)
        self.config = config or NodeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer

        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.neighbors: Dict[int, PeerConnection] = {}
        #: Gamma(v) as learned from crawls (excludes this node itself).
        self.neighbor_views: Dict[int, Set[int]] = {}
        #: Addresses learned from Pongs, for joins and repair.
        self.known_addresses: Dict[int, Tuple[str, int]] = {}
        self.pruned: List[int] = []

        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: List[PeerConnection] = []
        self._seen: "OrderedDict[bytes, None]" = OrderedDict()
        self._routes: "OrderedDict[bytes, PeerConnection]" = OrderedDict()
        self._hello_pending: Dict[bytes, PeerConnection] = {}
        self._crawl_pending: Dict[bytes, dict] = {}
        self._queries: Dict[bytes, LiveQuery] = {}
        self._guid_counter = 0

    def _trace(self, kind: str, **fields) -> None:
        """Emit one tracing event.

        Routed to the per-peer tracer when the node owns one (the
        tracer's ``ident`` carries the node identity as ``src``);
        otherwise the event falls back to the process-global obs
        session with an explicit ``node`` field, so single-node runs
        under ``--trace`` keep working without a private tracer.
        """
        if self.tracer is not None:
            self.tracer.emit(kind, **fields)
        else:
            _obs.event(kind, node=self.node_id, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Start listening (``port=0`` picks an ephemeral port)."""
        self._server = await asyncio.start_server(self._on_accept, host, port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    @property
    def running(self) -> bool:
        """Whether the node is currently listening (between start/stop)."""
        return self._server is not None

    async def stop(self) -> None:
        """Close the server and every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await self._close_connection(conn)
        for conn in list(self._connections):
            if conn.task is not None:
                conn.task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await conn.task
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connections and handshake
    # ------------------------------------------------------------------

    def _on_accept(self, reader, writer) -> None:
        conn = PeerConnection(self, reader, writer)
        self._connections.append(conn)
        self._hello(conn)
        conn.task = asyncio.ensure_future(self._read_loop(conn))

    async def connect(self, host: str, port: int) -> int:
        """Dial a peer, handshake, register it; returns its node id."""
        reader, writer = await asyncio.open_connection(host, port)
        conn = PeerConnection(self, reader, writer)
        self._connections.append(conn)
        self._hello(conn)
        conn.task = asyncio.ensure_future(self._read_loop(conn))
        try:
            await asyncio.wait_for(conn.handshaken.wait(),
                                   self.config.handshake_timeout)
        except asyncio.TimeoutError:
            await self._close_connection(conn)
            raise ConnectionError(
                f"handshake with {host}:{port} timed out"
            ) from None
        return conn.peer_id

    def _hello(self, conn: PeerConnection) -> None:
        did = self._next_guid()
        self._hello_pending[did] = conn
        conn.send(Ping(did, ttl=1, hops=0))

    async def _read_loop(self, conn: PeerConnection) -> None:
        m = self.metrics
        try:
            while not conn.closed:
                data = await conn.reader.read(65536)
                if not data:
                    break
                m.counter("node.rx.bytes").inc(len(data))
                before = conn.framer.decode_errors
                messages = conn.framer.feed(data)
                faults = conn.framer.decode_errors - before
                if faults:
                    m.counter("node.protocol_errors").inc(faults)
                for msg in messages:
                    self._dispatch(conn, msg)
                if conn.framer.desynced:
                    m.counter("node.desyncs").inc()
                    break
                if conn.framer.decode_errors > self.config.decode_error_limit:
                    m.counter("node.peers_dropped").inc()
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            await self._close_connection(conn)

    async def _close_connection(self, conn: PeerConnection) -> None:
        if conn.closed:
            return
        conn.closed = True
        pid = conn.peer_id
        if pid is not None and self.neighbors.get(pid) is conn:
            del self.neighbors[pid]
            self.metrics.counter("node.connections_closed").inc()
            self.metrics.gauge("node.degree").set(len(self.neighbors))
            self._trace("node.neighbor_lost", peer=pid)
        if conn in self._connections:
            self._connections.remove(conn)
        with contextlib.suppress(ConnectionError, OSError, RuntimeError):
            conn.writer.close()
            await conn.writer.wait_closed()

    def _register_neighbor(self, conn: PeerConnection) -> None:
        pid = conn.peer_id
        existing = self.neighbors.get(pid)
        if existing is not None and existing is not conn:
            # Simultaneous dial in both directions: keep the first link.
            self.metrics.counter("node.duplicate_links").inc()
            asyncio.ensure_future(self._close_connection(conn))
            return
        self.neighbors[pid] = conn
        self.metrics.counter("node.connections_opened").inc()
        self.metrics.gauge("node.degree").set(len(self.neighbors))
        self._trace("node.neighbor_up", peer=pid)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, conn: PeerConnection, msg) -> None:
        m = self.metrics
        if self.tracer is not None:
            self.tracer.emit(
                "node.rx", type=type(msg).__name__.lower(),
                peer=-1 if conn.peer_id is None else conn.peer_id,
            )
        t0 = time.perf_counter()
        if isinstance(msg, Ping):
            m.counter("node.rx.ping").inc()
            self._on_ping(conn, msg)
        elif isinstance(msg, Pong):
            m.counter("node.rx.pong").inc()
            self._on_pong(conn, msg)
        elif isinstance(msg, Query):
            m.counter("node.rx.query").inc()
            self._on_query(conn, msg)
        elif isinstance(msg, QueryHit):
            m.counter("node.rx.query_hit").inc()
            self._on_query_hit(conn, msg)
        elif isinstance(msg, ChunkRequest):
            m.counter("node.rx.chunk_request").inc()
            self._on_chunk_request(conn, msg)
        elif isinstance(msg, ManifestData):
            m.counter("node.rx.manifest").inc()
            self._on_manifest(conn, msg)
        elif isinstance(msg, ChunkData):
            m.counter("node.rx.chunk_data").inc()
            self._on_chunk_data(conn, msg)
        else:
            return
        m.quantile("node.dispatch_s").observe(time.perf_counter() - t0)

    def _on_ping(self, conn: PeerConnection, ping: Ping) -> None:
        # Every Ping gets our identity back, TTL sized to reach the
        # originator along the reverse path.
        conn.send(Pong(
            ping.descriptor_id, port=self.port or 0,
            ip=node_ip(self.node_id), files_shared=len(self.store),
            kb_shared=0, ttl=ping.hops + 1, hops=0,
        ))
        if ping.ttl <= 1:
            return
        did = ping.descriptor_id
        if did in self._seen:
            self.metrics.counter("node.ping.duplicates").inc()
            return
        self._remember_seen(did)
        self._remember_route(did, conn)
        fwd = Ping(did, ttl=ping.ttl - 1, hops=ping.hops + 1)
        for c in self.neighbors.values():
            if c is not conn and not c.closed:
                c.send(fwd)

    def _on_pong(self, conn: PeerConnection, pong: Pong) -> None:
        did = pong.descriptor_id
        hello = self._hello_pending.pop(did, None)
        if hello is not None:
            peer_id = ip_to_node(pong.ip)
            hello.peer_id = peer_id
            hello.peer_port = pong.port
            hello.framer.peer_id = peer_id
            hello.latency = self.latency_to(peer_id)
            self.known_addresses[peer_id] = (hello.remote_host, pong.port)
            self._trace("node.handshake", peer=peer_id, port=pong.port)
            self._register_neighbor(hello)
            hello.handshaken.set()
            return
        crawl = self._crawl_pending.get(did)
        if crawl is not None:
            peer_id = ip_to_node(pong.ip)
            if peer_id != self.node_id:
                self.known_addresses.setdefault(
                    peer_id, (conn.remote_host, pong.port)
                )
                if pong.hops > 0:
                    crawl["members"].add(peer_id)
            return
        route = self._routes.get(did)
        if route is not None and not route.closed and pong.ttl > 1:
            route.send(Pong(did, pong.port, pong.ip, pong.files_shared,
                            pong.kb_shared, ttl=pong.ttl - 1,
                            hops=pong.hops + 1))
        else:
            self.metrics.counter("node.pong.unroutable").inc()

    def _on_query(self, conn: PeerConnection, q: Query) -> None:
        m = self.metrics
        did = q.descriptor_id
        # Arrival hop: the wire ``hops`` field counts links already
        # traversed *before* this one, so an arriving copy traversed
        # ``q.hops + 1`` links — the simulator's hop index for the same
        # message (``FloodResult.messages_per_hop[hop - 1]``).
        hop = q.hops + 1
        sender = -1 if conn.peer_id is None else conn.peer_id
        m.counter(f"node.rx.query.hop.{hop:02d}").inc()
        if did in self._seen:
            m.counter("node.query.duplicates").inc()
            self._trace("node.query.dup", trace=did.hex(), peer=sender,
                        hop=hop)
            return
        self._remember_seen(did)
        self._remember_route(did, conn)
        m.counter("node.query.fresh").inc()
        self._trace("node.query.rx", trace=did.hex(), peer=sender,
                    hop=hop, ttl=q.ttl)
        key = key_from_criteria(q.search_criteria)
        if key is not None and key in self.store:
            m.counter("node.query.hits_served").inc()
            self._trace("node.query.hit", trace=did.hex(), key=key,
                        hop=hop)
            conn.send(QueryHit(
                did, port=self.port or 0, ip=node_ip(self.node_id),
                speed=0,
                results=(QueryHitResult(
                    file_index=key & 0xFFFFFFFF, file_size=0,
                    file_name=criteria_for_key(key),
                ),),
                servent_id=make_guid(self.node_id, 0),
                ttl=q.hops + 2, hops=0,
            ))
        if q.ttl > 1:
            fwd = Query(did, q.search_criteria, min_speed=q.min_speed,
                        ttl=q.ttl - 1, hops=q.hops + 1)
            forwarded = 0
            for c in self.neighbors.values():
                if c is not conn and not c.closed:
                    c.send(fwd)
                    forwarded += 1
            m.counter("node.query.forwarded").inc(forwarded)
            self._trace("node.query.fwd", trace=did.hex(), hop=hop,
                        fanout=forwarded)

    def _on_query_hit(self, conn: PeerConnection, qh: QueryHit) -> None:
        m = self.metrics
        did = qh.descriptor_id
        state = self._queries.get(did)
        if state is not None:
            state.hits.append(LiveHit(
                server=ip_to_node(qh.ip), hops=qh.hops,
                n_results=len(qh.results),
            ))
            m.counter("node.queryhit.received").inc()
            self._trace("node.query.hit_rx", trace=did.hex(),
                        server=ip_to_node(qh.ip), hops=qh.hops)
            return
        route = self._routes.get(did)
        if route is not None and not route.closed and qh.ttl > 1:
            route.send(QueryHit(did, qh.port, qh.ip, qh.speed, qh.results,
                                qh.servent_id, ttl=qh.ttl - 1,
                                hops=qh.hops + 1))
            m.counter("node.queryhit.routed").inc()
            self._trace(
                "node.query.route", trace=did.hex(),
                peer=-1 if route.peer_id is None else route.peer_id,
                server=ip_to_node(qh.ip),
            )
        else:
            m.counter("node.queryhit.unroutable").inc()

    # ------------------------------------------------------------------
    # Content transfer (ChunkRequest / ManifestData / ChunkData)
    # ------------------------------------------------------------------

    def _on_chunk_request(self, conn: PeerConnection, req: ChunkRequest) -> None:
        """Serve a chunk (or a whole object) from the content store.

        Replies reuse the request's descriptor ID so the requester can
        correlate the stream.  A miss — no content store, unknown key, or
        an incomplete local copy — is silently counted; the requester's
        timeout handles it, exactly like an unanswered Query.
        """
        m = self.metrics
        store = self.content
        manifest = store.manifest(req.key) if store is not None else None
        if manifest is None or not store.has_object(req.key):
            m.counter("node.content.misses").inc()
            self._trace("node.content.miss", trace=req.descriptor_id.hex(),
                        key=req.key)
            return
        did = req.descriptor_id
        if req.chunk_index == WHOLE_OBJECT:
            indices = range(manifest.n_chunks)
            conn.send(ManifestData(
                did, key=manifest.key, size=manifest.size,
                chunk_size=manifest.chunk_size,
                chunk_digests=manifest.chunk_digests,
            ))
        else:
            if req.chunk_index >= manifest.n_chunks:
                m.counter("node.content.misses").inc()
                return
            indices = (req.chunk_index,)
        sent_bytes = 0
        for i in indices:
            data = store.get_chunk(req.key, i)
            conn.send(ChunkData(did, key=req.key, chunk_index=i, data=data))
            sent_bytes += len(data)
        m.counter("node.content.serves").inc()
        m.counter("node.content.chunks_tx").inc(len(indices))
        m.counter("node.content.bytes_tx").inc(sent_bytes)
        self._trace("node.content.serve", trace=did.hex(), key=req.key,
                    chunks=len(indices), bytes=sent_bytes)

    def _on_manifest(self, conn: PeerConnection, md: ManifestData) -> None:
        """Ingest a pushed manifest (read-repair/healing or a fetch reply)."""
        if self.content is None:
            self.metrics.counter("node.content.ignored").inc()
            return
        try:
            self.content.put_manifest(Manifest(
                key=md.key, size=md.size, chunk_size=md.chunk_size,
                chunk_digests=md.chunk_digests,
            ))
        except (IntegrityError, ValueError):
            self.metrics.counter("node.content.manifest_conflict").inc()
            return
        self.metrics.counter("node.content.manifests_rx").inc()
        self._trace("node.content.manifest", trace=md.descriptor_id.hex(),
                    key=md.key, chunks=len(md.chunk_digests))
        if self.content.has_object(md.key) and md.key not in self.store:
            # A zero-chunk manifest IS the whole object — no ChunkData
            # will follow, so completion must be advertised here.
            self.store.add(md.key)
            self.metrics.counter("node.content.objects_completed").inc()
            self._trace("node.content.complete",
                        trace=md.descriptor_id.hex(), key=md.key)

    def _on_chunk_data(self, conn: PeerConnection, cd: ChunkData) -> None:
        """Verify and store one pushed chunk; completion shares the key."""
        if self.content is None:
            self.metrics.counter("node.content.ignored").inc()
            return
        m = self.metrics
        try:
            completed = self.content.put_chunk(cd.key, cd.chunk_index, cd.data)
        except IntegrityError:
            m.counter("node.content.chunk_corrupt").inc()
            self._trace("node.content.corrupt", trace=cd.descriptor_id.hex(),
                        key=cd.key, index=cd.chunk_index)
            return
        m.counter("node.content.chunks_rx").inc()
        m.counter("node.content.bytes_rx").inc(len(cd.data))
        if completed and cd.key not in self.store:
            self.store.add(cd.key)
            m.counter("node.content.objects_completed").inc()
            self._trace("node.content.complete",
                        trace=cd.descriptor_id.hex(), key=cd.key)

    # ------------------------------------------------------------------
    # Neighborhood exchange + Makalu maintenance
    # ------------------------------------------------------------------

    async def crawl(self, peer_id: int, settle: float = 0.05) -> Set[int]:
        """Learn ``Gamma(peer_id)`` via a 2-hop crawler ping.

        Returns the neighbor's neighborhood (this node excluded — which
        is exactly the set the rating function can use) and caches it in
        :attr:`neighbor_views`.  ``settle`` bounds how long reverse-path
        Pongs are collected.
        """
        conn = self.neighbors.get(peer_id)
        if conn is None or conn.closed:
            return set()
        did = self._next_guid()
        state = {"members": set()}
        self._crawl_pending[did] = state
        self._remember_seen(did)  # our own ping must never be re-forwarded
        conn.send(Ping(did, ttl=self.config.crawl_ttl, hops=0))
        await asyncio.sleep(settle)
        self._crawl_pending.pop(did, None)
        members = set(state["members"])
        members.discard(self.node_id)
        self.neighbor_views[peer_id] = members
        self._trace("node.crawl", peer=peer_id, members=len(members))
        return members

    async def refresh_neighbor_views(self, settle: float = 0.05) -> None:
        """Crawl every current neighbor concurrently."""
        await asyncio.gather(
            *(self.crawl(pid, settle=settle) for pid in list(self.neighbors))
        )

    def rate_current_neighbors(self) -> Dict[int, float]:
        """Makalu ratings of the current neighbor set (from cached views)."""
        latencies = {pid: c.latency for pid, c in self.neighbors.items()}
        return rate_neighbors(
            self.node_id, latencies,
            lambda v: self.neighbor_views.get(v, ()),
            self.config.weights,
        )

    async def manage(self, settle: float = 0.05) -> List[int]:
        """The paper's ``Manage()``: prune worst-rated while over capacity.

        Views are refreshed before each prune so ratings reflect the
        surviving topology.  Neighbors for which this node is the last
        known link are spared when any other victim exists (the builder's
        rule — pruning them would disconnect the overlay).
        """
        if self.capacity is None:
            return []
        pruned: List[int] = []
        while len(self.neighbors) > self.capacity:
            await self.refresh_neighbor_views(settle=settle)
            ratings = self.rate_current_neighbors()
            sparable = {
                pid: r for pid, r in ratings.items()
                if len(self.neighbor_views.get(pid, ())) >= 1
            }
            victim = worst_neighbor(sparable or ratings)
            pruned.append(victim)
            self.pruned.append(victim)
            self.metrics.counter("node.prunes").inc()
            self._trace("node.prune", peer=victim,
                        rating=ratings[victim])
            await self._close_connection(self.neighbors[victim])
        return pruned

    async def join(self, addresses: Sequence[Tuple[str, int]],
                   target: Optional[int] = None,
                   settle: float = 0.05) -> None:
        """Bootstrap into an overlay from seed addresses.

        Dials seeds, crawls for second-hop candidates, and keeps dialing
        learned addresses until ``target`` (default: capacity) neighbors
        are held; finishes with one :meth:`manage` pass.
        """
        if target is None:
            target = self.capacity if self.capacity is not None \
                else len(addresses)
        for host, port in addresses:
            if len(self.neighbors) >= target:
                break
            try:
                await self.connect(host, port)
            except (ConnectionError, OSError):
                self.metrics.counter("node.join.failures").inc()
        if len(self.neighbors) < target:
            await self.refresh_neighbor_views(settle=settle)
            for pid, addr in list(self.known_addresses.items()):
                if len(self.neighbors) >= target:
                    break
                if pid == self.node_id or pid in self.neighbors:
                    continue
                try:
                    await self.connect(*addr)
                except (ConnectionError, OSError):
                    self.metrics.counter("node.join.failures").inc()
        await self.manage(settle=settle)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def begin_query(self, key: int, ttl: Optional[int] = None) -> LiveQuery:
        """Originate a flood for an object key; returns live state.

        The flood completes asynchronously — callers observe quiescence
        (or wait a deadline) before reading the state's hits.
        """
        if ttl is None:
            ttl = self.config.default_ttl
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        did = self._next_guid()
        state = LiveQuery(descriptor_id=did, key=key, ttl=ttl,
                          self_hit=key in self.store)
        self._queries[did] = state
        self._remember_seen(did)  # copies looping back are duplicates
        q = Query(did, criteria_for_key(key), ttl=ttl, hops=0)
        fanout = 0
        for c in self.neighbors.values():
            if not c.closed:
                c.send(q)
                fanout += 1
        self.metrics.counter("node.query.originated").inc()
        self._trace("node.query.origin", trace=did.hex(), key=key,
                    ttl=ttl, fanout=fanout)
        return state

    def finish_query(self, state: LiveQuery) -> None:
        """Drop originator state once its hits have been consumed."""
        self._queries.pop(state.descriptor_id, None)

    # ------------------------------------------------------------------
    # Runtime telemetry
    # ------------------------------------------------------------------

    def runtime_stats(self) -> Dict[str, float]:
        """Point-in-time runtime gauges for a telemetry sampler.

        Everything is cheap to read (table sizes, byte counters) — this
        is the per-peer input of
        :class:`repro.obs.health.RuntimeSampler`, polled on an
        interval by :class:`repro.node.boot.LiveOverlay`.
        """
        return {
            "degree": float(len(self.neighbors)),
            "route_table": float(len(self._routes)),
            "seen_table": float(len(self._seen)),
            "pending_frame_bytes": float(sum(
                c.framer.pending_bytes for c in self._connections
            )),
            "queries_open": float(len(self._queries)),
            "rx_bytes": float(self.metrics.counter("node.rx.bytes").value),
            "tx_bytes": float(self.metrics.counter("node.tx.bytes").value),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_guid(self) -> bytes:
        self._guid_counter += 1
        return make_guid(self.node_id, self._guid_counter)

    def _remember_seen(self, did: bytes) -> None:
        self._seen[did] = None
        if len(self._seen) > self.config.route_capacity:
            self._seen.popitem(last=False)

    def _remember_route(self, did: bytes, conn: PeerConnection) -> None:
        self._routes[did] = conn
        if len(self._routes) > self.config.route_capacity:
            self._routes.popitem(last=False)
