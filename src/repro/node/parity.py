"""Sim/live parity harness: one seeded scenario, two execution engines.

The simulator (:mod:`repro.search.flooding` over a
:func:`~repro.core.makalu.makalu_graph` build) is the golden reference;
the live runtime (:mod:`repro.node.boot`) is the deployable artifact.
This module replays the *same* seeded scenario — same overlay build,
same placement, same :func:`~repro.search.flooding.draw_query_workload`
— through both, and renders each arm as a metric snapshot under
identical ``parity.*`` names so the existing ``repro obs diff
--fail-on-regression`` gate can hold them together.

What the gate may compare must be *deterministic under async
scheduling*.  With the full-coverage guard (TTL at least the worst
workload eccentricity + 1, enforced by default), every node that sees a
query forwards it exactly once regardless of arrival order, so the
flood's message totals, duplicate counts, visit counts, replica counts
and success are all arrival-order-independent:

    total = deg(source) + sum over visited v != source of (deg(v) - 1)

Per-hop message counts are gated too (``parity.hop.messages.<h>``):
in the one-event-loop live runtime a copy that traversed ``h`` links
needed ``h`` write->wake->process rounds, so shortest-path copies
always arrive first, first-arrival hops equal BFS depths, and each
hop's delivery count matches the simulator's
``FloodResult.messages_per_hop`` exactly — localizing any structural
drift to the hop where it happened.  Both arms emit every hop in
``1..ttl`` explicitly (zeros included), so a missing hop diffs as a
gated regression rather than a one-sided n/a.

First-hit hop depths are *not* in the gated set — they depend on which
copy arrives first, which real concurrency does not promise — and live
``node.*`` operational counters appear on the live side only (one-sided
metrics diff as n/a and never gate).

Structure parity is direction-aware: both arms report edge counts and
degree stats, and the live arm sets ``parity.divergence.edge_mismatch``
to the symmetric difference between the golden edge set and the edges
actually held by both endpoints of every live TCP link.  The sim arm
pins it at 0, so any live mismatch diffs as an infinite regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import makalu_graph
from repro.node.boot import LiveFloodResult, LiveOverlay, run_live_workload
from repro.node.peer import NodeConfig
from repro.obs.metrics import MetricsRegistry
from repro.search.flooding import FloodResult, draw_query_workload, flood
from repro.search.replication import Placement, place_objects
from repro.topology.graph import OverlayGraph


@dataclass(frozen=True)
class ParityScenario:
    """One seeded scenario replayed through both engines."""

    n_nodes: int = 24
    n_queries: int = 12
    ttl: int = 6
    n_objects: int = 8
    replication: float = 0.1
    seed: int = 7
    #: Require every sim flood to cover the whole overlay with a hop to
    #: spare — the precondition for live totals being scheduling-
    #: independent (see module docstring).  Disable only for exploratory
    #: runs whose diffs are read by humans, not gates.
    full_coverage_guard: bool = True

    def __post_init__(self):
        if self.n_nodes < 2:
            raise ValueError("a parity scenario needs at least 2 nodes")
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")


@dataclass
class ParityReport:
    """Both arms' snapshots plus the raw per-query results."""

    scenario: ParityScenario
    sim_snapshot: dict
    live_snapshot: dict
    sim_results: List[FloodResult]
    live_results: List[LiveFloodResult]
    edge_mismatch: int
    #: The (stopped) live overlay — merged trace readable when the run
    #: was traced.
    overlay: Optional["LiveOverlay"] = None

    def regressions(self, threshold: float = 0.02) -> List:
        """Gated deltas (sim -> live) beyond ``threshold``."""
        from repro.obs.report import diff_metrics

        return [
            d for d in diff_metrics(self.sim_snapshot, self.live_snapshot)
            if d.exceeds(threshold)
        ]


def _overlay_stats(reg: MetricsRegistry, graph: OverlayGraph) -> None:
    degs = graph.degrees
    reg.gauge("parity.overlay.n_edges").set(float(graph.n_edges))
    reg.gauge("parity.overlay.mean_degree").set(float(graph.mean_degree))
    reg.gauge("parity.overlay.min_degree").set(
        float(degs.min()) if degs.size else 0.0
    )
    reg.gauge("parity.overlay.max_degree").set(
        float(degs.max()) if degs.size else 0.0
    )
    reg.gauge("parity.overlay.components").set(
        float(graph.connected_components()[0])
    )


def _search_stats(
    reg: MetricsRegistry,
    successes: int,
    messages: int,
    duplicates: int,
    replicas: int,
    visited: int,
    n_queries: int,
) -> None:
    reg.counter("parity.queries").inc(n_queries)
    reg.counter("parity.messages_total").inc(messages)
    reg.counter("parity.duplicates_total").inc(duplicates)
    reg.counter("parity.replicas_found_total").inc(replicas)
    reg.counter("parity.nodes_visited_total").inc(visited)
    reg.gauge("parity.success_rate").set(
        successes / n_queries if n_queries else 0.0
    )
    reg.gauge("parity.duplicate_fraction").set(
        duplicates / messages if messages else 0.0
    )


def _hop_stats(reg: MetricsRegistry, per_hop: dict, ttl: int) -> None:
    """Gated per-hop totals; every hop in 1..ttl explicit, zeros included."""
    for h in range(1, ttl + 1):
        reg.counter(f"parity.hop.messages.{h:02d}").inc(
            int(per_hop.get(h, 0))
        )


def _check_coverage(scenario: ParityScenario,
                    sim_results: List[FloodResult], n_nodes: int) -> None:
    """Enforce the full-coverage precondition of the gated metric set."""
    worst_ecc = 0
    for r in sim_results:
        if r.nodes_visited != n_nodes:
            raise ValueError(
                f"flood from {r.source} covered {r.nodes_visited}/{n_nodes} "
                f"nodes at ttl={scenario.ttl}; live totals are only "
                f"scheduling-independent under full coverage — raise ttl "
                f"or set full_coverage_guard=False"
            )
        reached = np.nonzero(r.new_nodes_per_hop)[0]
        worst_ecc = max(worst_ecc, int(reached[-1]) + 1 if reached.size else 0)
    if scenario.ttl < worst_ecc + 1:
        raise ValueError(
            f"ttl={scenario.ttl} leaves no forwarding slack over the worst "
            f"source eccentricity {worst_ecc}; use ttl >= {worst_ecc + 1} "
            f"so every visited node forwards regardless of arrival order"
        )


def run_parity(scenario: ParityScenario = ParityScenario(),
               config: Optional[NodeConfig] = None,
               trace: bool = False) -> ParityReport:
    """Replay one seeded scenario through sim and live; snapshot both.

    ``trace=True`` runs the live arm with per-peer tracers enabled —
    tracing must leave every gated ``parity.*`` total bit-identical
    (the determinism guard of ``tests/node/test_parity.py``); the
    merged causal trace is then readable from the returned report's
    :attr:`ParityReport.overlay`.
    """
    graph = makalu_graph(n_nodes=scenario.n_nodes, seed=scenario.seed)
    placement: Placement = place_objects(
        graph.n_nodes, scenario.n_objects, scenario.replication,
        seed=scenario.seed + 2,
    )
    sources, objects = draw_query_workload(
        graph, placement, scenario.n_queries, seed=scenario.seed + 3
    )

    # --- sim arm (golden) ---------------------------------------------
    sim_results = [
        flood(graph, int(src), scenario.ttl,
              replica_mask=placement.holder_mask(int(obj)))
        for src, obj in zip(sources, objects)
    ]
    if scenario.full_coverage_guard:
        _check_coverage(scenario, sim_results, graph.n_nodes)
    sim_reg = MetricsRegistry()
    _search_stats(
        sim_reg,
        successes=sum(1 for r in sim_results if r.success),
        messages=sum(r.total_messages for r in sim_results),
        duplicates=sum(int(r.duplicates_per_hop.sum()) for r in sim_results),
        replicas=sum(r.replicas_found for r in sim_results),
        visited=sum(r.nodes_visited for r in sim_results),
        n_queries=scenario.n_queries,
    )
    sim_hops: dict = {}
    for r in sim_results:
        for h, c in enumerate(r.messages_per_hop, start=1):
            if c:
                sim_hops[h] = sim_hops.get(h, 0) + int(c)
    _hop_stats(sim_reg, sim_hops, scenario.ttl)
    _overlay_stats(sim_reg, graph)
    sim_reg.gauge("parity.divergence.edge_mismatch").set(0.0)

    # --- live arm ------------------------------------------------------
    live_results, overlay = run_live_workload(
        graph, placement, sources, objects, scenario.ttl, config=config,
        trace=trace,
    )
    live_graph = overlay.overlay_graph()
    golden_edges = {(u, v) for u, v, _ in graph.iter_edges()}
    mismatch = len(golden_edges ^ overlay.live_edges())

    live_reg = overlay.merged_registry()
    _search_stats(
        live_reg,
        successes=sum(1 for r in live_results if r.success),
        messages=sum(r.total_messages for r in live_results),
        duplicates=sum(r.duplicates for r in live_results),
        replicas=sum(r.replicas_found for r in live_results),
        visited=sum(r.nodes_visited for r in live_results),
        n_queries=scenario.n_queries,
    )
    live_counters = live_reg.snapshot()["counters"]
    live_hops = {
        int(name.rsplit(".", 1)[1]): count
        for name, count in live_counters.items()
        if name.startswith("node.rx.query.hop.")
    }
    _hop_stats(live_reg, live_hops, scenario.ttl)
    _overlay_stats(live_reg, live_graph)
    live_reg.gauge("parity.divergence.edge_mismatch").set(float(mismatch))

    return ParityReport(
        scenario=scenario,
        sim_snapshot=sim_reg.snapshot(),
        live_snapshot=live_reg.snapshot(),
        sim_results=sim_results,
        live_results=live_results,
        edge_mismatch=mismatch,
        overlay=overlay,
    )
