"""Causal query-tree reconstruction from live per-peer traces.

A live flood leaves a distributed record: every peer's tracer emits
``node.query.*`` events keyed by the query's 16-byte descriptor ID
(hex) — the trace/correlation ID, already unique and already flowing on
every hop of the wire, so correlation costs zero wire-format changes:

* ``node.query.origin`` — the originator's fan-out (root of the tree);
* ``node.query.rx``     — first delivery at a peer, with the arrival
  hop (1 = a direct neighbor of the root);
* ``node.query.dup``    — a suppressed duplicate delivery;
* ``node.query.fwd``    — the peer re-flooded the query (fan-out size);
* ``node.query.hit``    — the peer served a QueryHit;
* ``node.query.hit_rx`` — a hit arrived back at the originator.

:func:`build_query_trees` folds a *merged* event list (from
:meth:`~repro.node.boot.LiveOverlay.merged_trace` or
:func:`~repro.obs.merge_traces` over per-peer JSONL sinks) into one
:class:`QueryTree` per descriptor ID: who forwarded to whom, at which
hop, with per-hop latency (child's ``rx`` wall time minus the parent's
``fwd``/``origin`` wall time — all peers share one process clock, so
the difference is meaningful even though no timestamp crosses the
wire).  ``repro node trace`` is the CLI wrapper: text report plus a
Chrome/Perfetto export with one lane per peer and hop edges as flow
arrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "HopEdge",
    "QueryTree",
    "build_query_trees",
    "format_tree_report",
]

#: Event kinds that participate in tree reconstruction.
QUERY_KINDS = (
    "node.query.origin",
    "node.query.rx",
    "node.query.dup",
    "node.query.fwd",
    "node.query.hit",
    "node.query.hit_rx",
)


@dataclass(frozen=True)
class HopEdge:
    """One query delivery: ``parent`` sent the query to ``child``.

    ``hop`` is the arrival hop at the child (1 = direct neighbor of the
    root); ``latency`` the wall-clock seconds from the parent's forward
    to the child's delivery (None when the parent's forward event is
    missing from the merged trace); ``duplicate`` marks deliveries the
    child suppressed.
    """

    parent: str
    child: str
    hop: int
    latency: Optional[float]
    duplicate: bool = False


@dataclass
class QueryTree:
    """The reconstructed causal tree of one flooded query."""

    trace_id: str
    root: Optional[str] = None
    key: Optional[int] = None
    ttl: Optional[int] = None
    fanout: int = 0
    #: Peer ident -> arrival hop (the root at hop 0).
    depth_of: Dict[str, int] = field(default_factory=dict)
    #: First deliveries — the spanning tree of the flood.
    edges: List[HopEdge] = field(default_factory=list)
    #: Suppressed duplicate deliveries (cross edges of the flood).
    duplicates: List[HopEdge] = field(default_factory=list)
    #: ``(ident, hop)`` of every peer that served a QueryHit.
    hits_served: List[Tuple[str, int]] = field(default_factory=list)
    #: QueryHits that made it back to the originator.
    hits_delivered: int = 0

    @property
    def nodes_visited(self) -> int:
        """Peers that saw the query at least once (root included)."""
        return len(self.depth_of)

    @property
    def max_depth(self) -> int:
        """Deepest arrival hop in the tree."""
        return max(self.depth_of.values(), default=0)

    @property
    def total_messages(self) -> int:
        """Query copies delivered (fresh + duplicates) — sim's total."""
        return len(self.edges) + len(self.duplicates)

    def messages_per_hop(self) -> Dict[int, int]:
        """Query copies delivered per arrival hop (duplicates included).

        Matches the simulator's ``FloodResult.messages_per_hop``
        indexing: hop ``h`` counts copies that traversed ``h`` links.
        """
        counts: Dict[int, int] = {}
        for e in self.edges:
            counts[e.hop] = counts.get(e.hop, 0) + 1
        for e in self.duplicates:
            counts[e.hop] = counts.get(e.hop, 0) + 1
        return counts

    def hop_latencies(self) -> Dict[int, List[float]]:
        """Per-hop forward latencies of the spanning-tree edges."""
        out: Dict[int, List[float]] = {}
        for e in self.edges:
            if e.latency is not None:
                out.setdefault(e.hop, []).append(e.latency)
        return out

    def parent_of(self) -> Dict[str, str]:
        """Child ident -> parent ident over the spanning-tree edges."""
        return {e.child: e.parent for e in self.edges}

    @property
    def complete(self) -> bool:
        """Whether the tree is fully causally reconstructed.

        Complete means: the origin event is present, every visited
        peer's parent chain reaches the root, and every hit-serving
        peer is among the visited — i.e. root and hits are all
        reachable via parent edges.
        """
        if self.root is None:
            return False
        parents = self.parent_of()
        for ident in self.depth_of:
            seen = set()
            cur = ident
            while cur != self.root:
                if cur in seen or cur not in parents:
                    return False
                seen.add(cur)
                cur = parents[cur]
        return all(ident in self.depth_of for ident, _ in self.hits_served)


def build_query_trees(events: List[dict]) -> List[QueryTree]:
    """Fold merged trace events into one :class:`QueryTree` per query.

    Two passes so the result does not depend on event order: first
    collect every peer's forward timestamps, then attach edges.  Trees
    come back sorted by trace ID (deterministic for seeded runs, whose
    descriptor IDs are ``make_guid(node_id, counter)``).
    """
    trees: Dict[str, QueryTree] = {}
    #: (trace_id, ident) -> wall time the ident (re-)flooded the query.
    send_t: Dict[Tuple[str, str], float] = {}

    def tree(trace_id: str) -> QueryTree:
        if trace_id not in trees:
            trees[trace_id] = QueryTree(trace_id=trace_id)
        return trees[trace_id]

    for e in events:
        kind = e.get("kind")
        if kind not in ("node.query.origin", "node.query.fwd"):
            continue
        trace_id = str(e.get("trace", ""))
        src = str(e.get("src", e.get("node", "")))
        if "t" in e:
            key = (trace_id, src)
            if key not in send_t:
                send_t[key] = float(e["t"])

    for e in events:
        kind = e.get("kind")
        if kind not in QUERY_KINDS:
            continue
        trace_id = str(e.get("trace", ""))
        src = str(e.get("src", e.get("node", "")))
        tr = tree(trace_id)
        if kind == "node.query.origin":
            tr.root = src
            tr.key = e.get("key")
            tr.ttl = e.get("ttl")
            tr.fanout = int(e.get("fanout", 0))
            tr.depth_of.setdefault(src, 0)
        elif kind in ("node.query.rx", "node.query.dup"):
            parent = str(e.get("peer", ""))
            hop = int(e.get("hop", 0))
            latency = None
            sent = send_t.get((trace_id, parent))
            if sent is not None and "t" in e:
                latency = float(e["t"]) - sent
            edge = HopEdge(parent=parent, child=src, hop=hop,
                           latency=latency,
                           duplicate=(kind == "node.query.dup"))
            if kind == "node.query.rx":
                tr.depth_of.setdefault(src, hop)
                tr.edges.append(edge)
            else:
                tr.duplicates.append(edge)
        elif kind == "node.query.hit":
            tr.hits_served.append((src, int(e.get("hop", 0))))
        elif kind == "node.query.hit_rx":
            tr.hits_delivered += 1
    return [trees[tid] for tid in sorted(trees)]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def _latency_summary(values: List[float]) -> str:
    if not values:
        return "n/a"
    ordered = sorted(values)
    p50 = ordered[len(ordered) // 2]
    p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
    return (f"n={len(ordered)} p50={_fmt_ms(p50)} "
            f"p95={_fmt_ms(p95)} max={_fmt_ms(ordered[-1])}")


def format_tree_report(trees: List[QueryTree],
                       n_events: int = 0,
                       verbose: bool = False) -> str:
    """Human-readable report of reconstructed query trees."""
    lines: List[str] = []
    complete = sum(1 for t in trees if t.complete)
    lines.append(
        f"== live query traces: {len(trees)} tree(s), "
        f"{complete} complete, {n_events} event(s) =="
    )
    all_latencies: List[float] = []
    for tr in trees:
        hops = tr.messages_per_hop()
        per_hop = " ".join(
            f"h{h}:{hops[h]}" for h in sorted(hops)
        ) or "none"
        status = "complete" if tr.complete else "INCOMPLETE"
        lines.append(
            f"query {tr.trace_id[:16]} root={tr.root} key={tr.key} "
            f"ttl={tr.ttl}: visited {tr.nodes_visited} node(s), "
            f"depth {tr.max_depth}, {tr.total_messages} message(s) "
            f"({len(tr.duplicates)} dup), {len(tr.hits_served)} hit(s) "
            f"served, {tr.hits_delivered} delivered [{status}]"
        )
        lines.append(f"  messages/hop: {per_hop}")
        for hop, values in sorted(tr.hop_latencies().items()):
            all_latencies.extend(values)
            if verbose:
                lines.append(
                    f"  hop {hop} latency: {_latency_summary(values)}"
                )
        if verbose:
            for e in tr.edges:
                lat = "" if e.latency is None else f" ({_fmt_ms(e.latency)})"
                lines.append(
                    f"    {e.parent} -> {e.child} @h{e.hop}{lat}"
                )
    lines.append(f"hop latency overall: {_latency_summary(all_latencies)}")
    return "\n".join(lines)
