"""Boot a whole live overlay of asyncio peers in one process.

:class:`LiveOverlay` launches one :class:`~repro.node.peer.PeerNode` per
overlay node on ``127.0.0.1`` (ephemeral ports), wires the seeded
topology of an :class:`~repro.topology.graph.OverlayGraph` over real TCP
connections, injects the graph's link latencies as the peers' measured
distances, and serves flood queries with per-query message accounting
derived from the nodes' private metric registries.

Quiescence instead of sleep: because every peer lives in the same event
loop, "the flood is over" is observable — the sum of all tx/rx counters
stops moving (:meth:`LiveOverlay.settle`).  That is what makes live
per-query totals exact rather than timeout-truncated, and it is the
mechanism the sim/live parity harness (:mod:`repro.node.parity`) relies
on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.node.peer import LiveQuery, NodeConfig, PeerNode
from repro.obs.metrics import MetricsRegistry
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph

#: Counters summed across nodes for quiescence detection: every message
#: leaving a node eventually lands in a receiver's rx counter, so two
#: identical consecutive sums mean no message is in flight.
_ACTIVITY_COUNTERS = (
    "node.tx.messages",
    "node.rx.ping",
    "node.rx.pong",
    "node.rx.query",
    "node.rx.query_hit",
)


@dataclass(frozen=True)
class LiveFloodResult:
    """Accounting of one live flood, shaped like the sim's FloodResult."""

    source: int
    key: int
    ttl: int
    success: bool
    first_hit_hop: int
    replicas_found: int
    total_messages: int
    duplicates: int
    nodes_visited: int

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of query messages that were duplicates."""
        if self.total_messages == 0:
            return 0.0
        return self.duplicates / self.total_messages


class LiveOverlay:
    """N live peers wired into a seeded topology.

    Parameters
    ----------
    graph:
        The seeded topology (typically a Makalu build — the golden
        reference the live overlay must mirror).
    placement:
        Optional replica placement; each node's store is its objects.
    capacities:
        Optional per-node Makalu capacities (enables live prune
        maintenance).  Default None: the launcher owns the topology and
        peers never prune.
    latency_fn:
        ``(u, v) -> d`` injected link latency; defaults to the graph's
        edge latency (1.0 for non-edges, which only candidate dials see).
    """

    def __init__(
        self,
        graph: OverlayGraph,
        placement: Optional[Placement] = None,
        capacities: Optional[Sequence[int]] = None,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        config: Optional[NodeConfig] = None,
        host: str = "127.0.0.1",
    ):
        if placement is not None and placement.n_nodes != graph.n_nodes:
            raise ValueError("placement and graph node counts disagree")
        if capacities is not None and len(capacities) != graph.n_nodes:
            raise ValueError("capacities must have one entry per node")
        self.graph = graph
        self.placement = placement
        self.host = host
        self.config = config or NodeConfig()
        if latency_fn is None:
            latency_fn = self._graph_latency
        stores = self._stores(placement, graph.n_nodes)
        self.nodes: List[PeerNode] = [
            PeerNode(
                u,
                capacity=None if capacities is None else int(capacities[u]),
                store=stores[u],
                latency_to=(lambda v, _u=u: latency_fn(_u, v)),
                config=self.config,
            )
            for u in range(graph.n_nodes)
        ]
        self._started = False
        self._final_edges: Optional[Set[Tuple[int, int]]] = None
        self._final_latency: Dict[Tuple[int, int], float] = {}

    def _graph_latency(self, u: int, v: int) -> float:
        try:
            return self.graph.edge_latency(u, v)
        except KeyError:
            return 1.0

    @staticmethod
    def _stores(placement: Optional[Placement], n: int) -> List[Set[int]]:
        if placement is None:
            return [set() for _ in range(n)]
        indptr, keys = placement.node_store()
        return [
            {int(k) for k in keys[indptr[u]:indptr[u + 1]]} for u in range(n)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start every server, then dial every seeded edge."""
        await asyncio.gather(*(n.start(self.host, 0) for n in self.nodes))
        for u, v, _lat in self.graph.iter_edges():
            await self.nodes[u].connect(self.host, self.nodes[v].port)
        self._started = True

    async def stop(self) -> None:
        """Tear every peer down.

        The final topology is frozen first, so structure readback
        (:meth:`live_edges` / :meth:`overlay_graph`) stays truthful
        after teardown.
        """
        if self._started:
            self._final_edges = self._edges_from_links()
            self._final_latency = {
                (u, v): self.nodes[u].neighbors[v].latency
                for u, v in self._final_edges
            }
        await asyncio.gather(*(n.stop() for n in self.nodes))
        self._started = False

    # ------------------------------------------------------------------
    # Quiescence + accounting
    # ------------------------------------------------------------------

    def _activity_fingerprint(self) -> Tuple[int, ...]:
        return tuple(self._counter_total(name) for name in _ACTIVITY_COUNTERS)

    def _counter_total(self, name: str) -> int:
        total = 0
        for n in self.nodes:
            total += n.metrics.snapshot()["counters"].get(name, 0)
        return total

    async def settle(self, idle: float = 0.02, timeout: float = 10.0) -> bool:
        """Wait until no message is in flight anywhere in the overlay.

        Polls the overlay-wide tx/rx counter sums every ``idle`` seconds
        and returns True once two consecutive polls agree (False if
        ``timeout`` elapses first — e.g. a peer wedged mid-flood).
        """
        deadline = time.monotonic() + timeout
        last = self._activity_fingerprint()
        while time.monotonic() < deadline:
            await asyncio.sleep(idle)
            current = self._activity_fingerprint()
            if current == last:
                return True
            last = current
        return False

    async def flood(self, source: int, key: int,
                    ttl: Optional[int] = None) -> LiveFloodResult:
        """Flood one query from ``source`` and account it exactly.

        Runs the query to quiescence; the per-query totals are the
        deltas of the overlay-wide query counters around it, which is
        valid because queries are serialized through this method.
        """
        if not self._started:
            raise RuntimeError("overlay is not started")
        base_rx = self._counter_total("node.rx.query")
        base_dup = self._counter_total("node.query.duplicates")
        base_fresh = self._counter_total("node.query.fresh")
        state: LiveQuery = self.nodes[source].begin_query(key, ttl=ttl)
        await self.settle()
        self.nodes[source].finish_query(state)
        return LiveFloodResult(
            source=source,
            key=key,
            ttl=state.ttl,
            success=state.success,
            first_hit_hop=state.first_hit_hop,
            replicas_found=state.replicas_found,
            total_messages=self._counter_total("node.rx.query") - base_rx,
            duplicates=self._counter_total("node.query.duplicates") - base_dup,
            nodes_visited=(
                self._counter_total("node.query.fresh") - base_fresh + 1
            ),
        )

    # ------------------------------------------------------------------
    # Structure + metrics readback
    # ------------------------------------------------------------------

    def _edges_from_links(self) -> Set[Tuple[int, int]]:
        edges: Set[Tuple[int, int]] = set()
        for node in self.nodes:
            for pid in node.neighbors:
                u, v = min(node.node_id, pid), max(node.node_id, pid)
                if pid < len(self.nodes) and \
                        node.node_id in self.nodes[pid].neighbors:
                    edges.add((u, v))
        return edges

    def live_edges(self) -> Set[Tuple[int, int]]:
        """The overlay's actual edge set, read from per-peer link tables.

        An edge counts only when *both* endpoints hold the link — a
        half-open connection is a fault, not an edge.  After
        :meth:`stop`, returns the topology frozen at teardown.
        """
        if not self._started and self._final_edges is not None:
            return set(self._final_edges)
        return self._edges_from_links()

    def _link_latency(self, u: int, v: int) -> float:
        conn = self.nodes[u].neighbors.get(v)
        if conn is not None:
            return conn.latency
        return self._final_latency.get((u, v), 1.0)

    def overlay_graph(self) -> OverlayGraph:
        """Freeze the live topology into an OverlayGraph."""
        edges = sorted(self.live_edges())
        if not edges:
            return OverlayGraph.from_edges(
                len(self.nodes), np.asarray([], dtype=np.int64),
                np.asarray([], dtype=np.int64),
            )
        eu = np.asarray([e[0] for e in edges], dtype=np.int64)
        ev = np.asarray([e[1] for e in edges], dtype=np.int64)
        lat = np.asarray([self._link_latency(u, v) for u, v in edges])
        return OverlayGraph.from_edges(len(self.nodes), eu, ev, lat)

    def merged_registry(self) -> MetricsRegistry:
        """All per-node metrics folded into one registry."""
        merged = MetricsRegistry()
        for node in self.nodes:
            merged.merge_snapshot(node.metrics.snapshot())
        return merged

    def per_node_snapshots(self) -> Dict[int, dict]:
        """Each node's private metric snapshot, keyed by node id."""
        return {n.node_id: n.metrics.snapshot() for n in self.nodes}


async def boot_and_flood(
    graph: OverlayGraph,
    placement: Placement,
    sources: Sequence[int],
    objects: Sequence[int],
    ttl: int,
    config: Optional[NodeConfig] = None,
    capacities: Optional[Sequence[int]] = None,
) -> Tuple[List[LiveFloodResult], LiveOverlay]:
    """Boot the overlay, serve a workload, return results + the overlay.

    The overlay is stopped before returning; its structure and metrics
    remain readable (link tables and registries survive the teardown).
    """
    overlay = LiveOverlay(graph, placement=placement, config=config,
                          capacities=capacities)
    await overlay.start()
    try:
        results = []
        for src, obj in zip(sources, objects):
            results.append(
                await overlay.flood(int(src), placement.key_of(int(obj)),
                                    ttl=ttl)
            )
    finally:
        await overlay.stop()
    return results, overlay


def run_live_workload(
    graph: OverlayGraph,
    placement: Placement,
    sources: Sequence[int],
    objects: Sequence[int],
    ttl: int,
    config: Optional[NodeConfig] = None,
    capacities: Optional[Sequence[int]] = None,
) -> Tuple[List[LiveFloodResult], LiveOverlay]:
    """Synchronous wrapper around :func:`boot_and_flood`."""
    return asyncio.run(
        boot_and_flood(graph, placement, sources, objects, ttl,
                       config=config, capacities=capacities)
    )
