"""Boot a whole live overlay of asyncio peers in one process.

:class:`LiveOverlay` launches one :class:`~repro.node.peer.PeerNode` per
overlay node on ``127.0.0.1`` (ephemeral ports), wires the seeded
topology of an :class:`~repro.topology.graph.OverlayGraph` over real TCP
connections, injects the graph's link latencies as the peers' measured
distances, and serves flood queries with per-query message accounting
derived from the nodes' private metric registries.

Quiescence instead of sleep: because every peer lives in the same event
loop, "the flood is over" is observable — the sum of all tx/rx counters
stops moving (:meth:`LiveOverlay.settle`).  That is what makes live
per-query totals exact rather than timeout-truncated, and it is the
mechanism the sim/live parity harness (:mod:`repro.node.parity`) relies
on.

Observability: pass ``trace=True`` (or ``trace_dir=``) and every peer
gets a private wall-clock :class:`~repro.obs.Tracer`
(``ident=str(node_id)``) emitting the distributed-tracing catalogue;
:meth:`LiveOverlay.merged_trace` merges the per-peer streams into one
causally ordered list (``repro node trace`` reconstructs the query
trees).  ``telemetry_interval > 0`` additionally runs a
:class:`~repro.obs.RuntimeSampler` loop recording event-loop lag,
byte counters, and route/pending-buffer occupancy into a dedicated
registry folded into :meth:`LiveOverlay.merged_registry`.  Tracing
never touches the per-peer metric registries, so flood accounting is
bit-identical with tracing on or off.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.node.peer import LiveQuery, NodeConfig, PeerNode
from repro.obs.health import RuntimeSampler
from repro.obs.metrics import MetricsRegistry, _jsonable
from repro.obs.tracer import Tracer, merge_events
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph

#: Counters summed across nodes for quiescence detection: every message
#: leaving a node eventually lands in a receiver's rx counter, so two
#: identical consecutive sums mean no message is in flight.
_ACTIVITY_COUNTERS = (
    "node.tx.messages",
    "node.rx.ping",
    "node.rx.pong",
    "node.rx.query",
    "node.rx.query_hit",
    "node.rx.chunk_request",
    "node.rx.manifest",
    "node.rx.chunk_data",
)


@dataclass(frozen=True)
class LiveFloodResult:
    """Accounting of one live flood, shaped like the sim's FloodResult."""

    source: int
    key: int
    ttl: int
    success: bool
    first_hit_hop: int
    replicas_found: int
    total_messages: int
    duplicates: int
    nodes_visited: int

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of query messages that were duplicates."""
        if self.total_messages == 0:
            return 0.0
        return self.duplicates / self.total_messages


class LiveOverlay:
    """N live peers wired into a seeded topology.

    Parameters
    ----------
    graph:
        The seeded topology (typically a Makalu build — the golden
        reference the live overlay must mirror).
    placement:
        Optional replica placement; each node's store is its objects.
    capacities:
        Optional per-node Makalu capacities (enables live prune
        maintenance).  Default None: the launcher owns the topology and
        peers never prune.
    latency_fn:
        ``(u, v) -> d`` injected link latency; defaults to the graph's
        edge latency (1.0 for non-edges, which only candidate dials see).
    trace:
        Give every peer a private wall-clock tracer (ring-buffered;
        read back via :meth:`merged_trace`).
    trace_dir:
        Directory receiving one ``peer-<id>.jsonl`` sink per peer
        (created if missing; implies ``trace``).  The per-peer files
        are what ``repro node trace DIR`` merges offline.
    trace_capacity:
        Ring capacity of each per-peer tracer.
    telemetry_interval:
        Seconds between runtime-telemetry samples (``0`` disables the
        sampler task entirely).
    """

    def __init__(
        self,
        graph: OverlayGraph,
        placement: Optional[Placement] = None,
        capacities: Optional[Sequence[int]] = None,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        config: Optional[NodeConfig] = None,
        host: str = "127.0.0.1",
        trace: bool = False,
        trace_dir: Optional[str] = None,
        trace_capacity: int = 65536,
        telemetry_interval: float = 0.0,
    ):
        if placement is not None and placement.n_nodes != graph.n_nodes:
            raise ValueError("placement and graph node counts disagree")
        if capacities is not None and len(capacities) != graph.n_nodes:
            raise ValueError("capacities must have one entry per node")
        if telemetry_interval < 0:
            raise ValueError("telemetry_interval must be >= 0")
        self.graph = graph
        self.placement = placement
        self.host = host
        self.config = config or NodeConfig()
        self.tracing = bool(trace) or trace_dir is not None
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self.telemetry_interval = float(telemetry_interval)
        self.telemetry_registry = MetricsRegistry()
        self.telemetry = RuntimeSampler(registry=self.telemetry_registry)
        self._telemetry_task: Optional[asyncio.Task] = None
        if latency_fn is None:
            latency_fn = self._graph_latency
        self._latency_fn = latency_fn
        self._capacities = (
            None if capacities is None else [int(c) for c in capacities]
        )
        self._trace_capacity = trace_capacity
        stores = self._stores(placement, graph.n_nodes)
        self.nodes: List[PeerNode] = [
            self._spawn_peer(u, store=stores[u])
            for u in range(graph.n_nodes)
        ]
        #: Dead incarnations (killed then revived peers): their metrics
        #: and traces stay part of the merged readback.
        self._retired: List[PeerNode] = []
        self._generation: Dict[int, int] = {}
        self._started = False
        self._final_edges: Optional[Set[Tuple[int, int]]] = None
        self._final_latency: Dict[Tuple[int, int], float] = {}

    def _spawn_peer(self, node_id: int, store: Optional[Set[int]] = None,
                    capacity: Optional[int] = None,
                    generation: int = 0) -> PeerNode:
        """Construct one peer process image (fresh state, fresh metrics)."""
        if capacity is None and self._capacities is not None \
                and node_id < len(self._capacities):
            capacity = self._capacities[node_id]
        latency_fn = self._latency_fn
        return PeerNode(
            node_id,
            capacity=capacity,
            store=store,
            latency_to=(lambda v, _u=node_id: latency_fn(_u, v)),
            config=self.config,
            tracer=self._make_tracer(node_id, self._trace_capacity,
                                     generation=generation),
        )

    def _make_tracer(self, node_id: int, capacity: int,
                     generation: int = 0) -> Optional[Tracer]:
        if not self.tracing:
            return None
        sink = None
        if self.trace_dir is not None:
            # Revived incarnations get their own sink: a Tracer opens its
            # file with "w", so reusing the name would erase the dead
            # incarnation's events.
            stem = (f"peer-{node_id}" if generation == 0
                    else f"peer-{node_id}-r{generation}")
            sink = os.path.join(self.trace_dir, f"{stem}.jsonl")
        return Tracer(capacity=capacity, sink=sink, ident=str(node_id),
                      timebase="wall")

    def _graph_latency(self, u: int, v: int) -> float:
        try:
            return self.graph.edge_latency(u, v)
        except (KeyError, IndexError, ValueError):
            # Non-edges and peers added after the seeded build (add_peer
            # ids fall outside the graph, which rejects them with
            # ValueError) measure the default distance.
            return 1.0

    @staticmethod
    def _stores(placement: Optional[Placement], n: int) -> List[Set[int]]:
        if placement is None:
            return [set() for _ in range(n)]
        indptr, keys = placement.node_store()
        return [
            {int(k) for k in keys[indptr[u]:indptr[u + 1]]} for u in range(n)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start every server, then dial every seeded edge."""
        await asyncio.gather(*(n.start(self.host, 0) for n in self.nodes))
        for u, v, _lat in self.graph.iter_edges():
            await self.nodes[u].connect(self.host, self.nodes[v].port)
        self._started = True
        if self.telemetry_interval > 0:
            self._telemetry_task = asyncio.ensure_future(
                self._telemetry_loop()
            )

    async def _telemetry_loop(self) -> None:
        """Sample runtime telemetry every ``telemetry_interval`` seconds.

        Event-loop lag is the sleep overshoot: how much later than
        requested the loop got back to this (lowest-priority) task —
        the same signal a wedged or overloaded loop shows first.
        """
        interval = self.telemetry_interval
        loop = asyncio.get_event_loop()
        while True:
            target = loop.time() + interval
            await asyncio.sleep(interval)
            lag = max(loop.time() - target, 0.0)
            self.telemetry.sample(
                time.time(),
                {str(n.node_id): n.runtime_stats() for n in self.nodes},
                loop_lag_s=lag,
            )

    async def stop(self) -> None:
        """Tear every peer down.

        The final topology is frozen first, so structure readback
        (:meth:`live_edges` / :meth:`overlay_graph`) stays truthful
        after teardown.  Per-peer tracer sinks are flushed and closed;
        ring buffers stay readable (:meth:`merged_trace`).
        """
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
            self._telemetry_task = None
        if self._started:
            self._final_edges = self._edges_from_links()
            self._final_latency = {
                (u, v): self.nodes[u].neighbors[v].latency
                for u, v in self._final_edges
            }
        await asyncio.gather(*(n.stop() for n in self.nodes))
        for node in self.nodes:
            if node.tracer is not None:
                node.tracer.close()
        self._started = False

    # ------------------------------------------------------------------
    # Dynamic membership (live churn)
    # ------------------------------------------------------------------

    async def kill_peer(self, node_id: int) -> None:
        """Hard-kill a running peer mid-run: crash-is-disk-loss semantics.

        The peer's server and connections close (survivors observe the
        dropped links through their read loops), its content store is
        wiped and its advertised keys cleared — copies die with the
        process.  The stopped node stays addressable in :attr:`nodes`
        (``running`` False) until :meth:`revive_peer` replaces it with a
        fresh incarnation.
        """
        node = self.nodes[node_id]
        if not node.running:
            raise ValueError(f"peer {node_id} is not running")
        await node.stop()
        if node.content is not None:
            node.content.wipe()
        node.store.clear()
        await self.settle()

    def _seed_addresses(self, exclude: int = -1) -> List[Tuple[str, int]]:
        """Addresses of currently-running peers, ascending node id."""
        return [
            (n.host, n.port) for n in self.nodes
            if n.running and n.node_id != exclude
        ]

    def _join_target(self, node_id: int,
                     capacity: Optional[int]) -> int:
        """Neighbor count a joiner dials for: capacity, else seeded degree.

        Peers beyond the seeded graph (added mid-run) fall back to the
        graph's median degree so growth does not distort the topology.
        """
        if capacity is not None:
            return max(1, int(capacity))
        degrees = self.graph.degrees
        if node_id < self.graph.n_nodes:
            return max(1, int(degrees[node_id]))
        return max(1, int(np.median(degrees))) if degrees.size else 1

    async def revive_peer(self, node_id: int,
                          target: Optional[int] = None,
                          settle: float = 0.05) -> PeerNode:
        """Bring a killed peer back as a fresh process image.

        A brand-new :class:`PeerNode` — empty store, views, routes, and
        dedup state, matching a real process restart — starts listening
        and bootstraps through the ordinary :meth:`PeerNode.join`
        against the currently-running peers' addresses.  The dead
        incarnation is retired, not discarded: its metrics and trace
        ring remain part of :meth:`merged_registry` /
        :meth:`merged_trace`, so overlay-wide accounting stays monotone
        across the kill.
        """
        old = self.nodes[node_id]
        if old.running:
            raise ValueError(f"peer {node_id} is still running")
        if old.tracer is not None:
            old.tracer.close()
        self._retired.append(old)
        gen = self._generation.get(node_id, 0) + 1
        self._generation[node_id] = gen
        node = self._spawn_peer(node_id, capacity=old.capacity,
                                generation=gen)
        self.nodes[node_id] = node
        await node.start(self.host, 0)
        if target is None:
            target = self._join_target(node_id, old.capacity)
        await node.join(self._seed_addresses(exclude=node_id),
                        target=target, settle=settle)
        await self.settle()
        return node

    async def add_peer(self, capacity: Optional[int] = None,
                       target: Optional[int] = None,
                       settle: float = 0.05) -> PeerNode:
        """Grow the overlay: a brand-new peer joins the running mesh.

        The new peer takes the next node id, starts listening, and
        bootstraps through :meth:`PeerNode.join` exactly like a revived
        one.  Structure readback (:meth:`live_edges`,
        :meth:`overlay_graph`) covers it immediately.
        """
        node_id = len(self.nodes)
        node = self._spawn_peer(node_id, capacity=capacity)
        self.nodes.append(node)
        await node.start(self.host, 0)
        if target is None:
            target = self._join_target(node_id, capacity)
        await node.join(self._seed_addresses(exclude=node_id),
                        target=target, settle=settle)
        await self.settle()
        return node

    # ------------------------------------------------------------------
    # Quiescence + accounting
    # ------------------------------------------------------------------

    def _activity_fingerprint(self) -> Tuple[int, ...]:
        return tuple(self._counter_total(name) for name in _ACTIVITY_COUNTERS)

    def _counter_total(self, name: str) -> int:
        # Retired incarnations are stopped (their counters frozen), but
        # including them keeps overlay-wide totals monotone across kills.
        total = 0
        for n in (*self._retired, *self.nodes):
            total += n.metrics.snapshot()["counters"].get(name, 0)
        return total

    async def settle(self, idle: float = 0.02, timeout: float = 10.0) -> bool:
        """Wait until no message is in flight anywhere in the overlay.

        Polls the overlay-wide tx/rx counter sums every ``idle`` seconds
        and returns True once two consecutive polls agree (False if
        ``timeout`` elapses first — e.g. a peer wedged mid-flood).
        """
        deadline = time.monotonic() + timeout
        last = self._activity_fingerprint()
        while time.monotonic() < deadline:
            await asyncio.sleep(idle)
            current = self._activity_fingerprint()
            if current == last:
                return True
            last = current
        return False

    async def flood(self, source: int, key: int,
                    ttl: Optional[int] = None) -> LiveFloodResult:
        """Flood one query from ``source`` and account it exactly.

        Runs the query to quiescence; the per-query totals are the
        deltas of the overlay-wide query counters around it, which is
        valid because queries are serialized through this method.
        """
        if not self._started:
            raise RuntimeError("overlay is not started")
        base_rx = self._counter_total("node.rx.query")
        base_dup = self._counter_total("node.query.duplicates")
        base_fresh = self._counter_total("node.query.fresh")
        state: LiveQuery = self.nodes[source].begin_query(key, ttl=ttl)
        await self.settle()
        self.nodes[source].finish_query(state)
        return LiveFloodResult(
            source=source,
            key=key,
            ttl=state.ttl,
            success=state.success,
            first_hit_hop=state.first_hit_hop,
            replicas_found=state.replicas_found,
            total_messages=self._counter_total("node.rx.query") - base_rx,
            duplicates=self._counter_total("node.query.duplicates") - base_dup,
            nodes_visited=(
                self._counter_total("node.query.fresh") - base_fresh + 1
            ),
        )

    # ------------------------------------------------------------------
    # Structure + metrics readback
    # ------------------------------------------------------------------

    def _edges_from_links(self) -> Set[Tuple[int, int]]:
        edges: Set[Tuple[int, int]] = set()
        for node in self.nodes:
            for pid in node.neighbors:
                u, v = min(node.node_id, pid), max(node.node_id, pid)
                if pid < len(self.nodes) and \
                        node.node_id in self.nodes[pid].neighbors:
                    edges.add((u, v))
        return edges

    def live_edges(self) -> Set[Tuple[int, int]]:
        """The overlay's actual edge set, read from per-peer link tables.

        An edge counts only when *both* endpoints hold the link — a
        half-open connection is a fault, not an edge.  After
        :meth:`stop`, returns the topology frozen at teardown.
        """
        if not self._started and self._final_edges is not None:
            return set(self._final_edges)
        return self._edges_from_links()

    def _link_latency(self, u: int, v: int) -> float:
        conn = self.nodes[u].neighbors.get(v)
        if conn is not None:
            return conn.latency
        return self._final_latency.get((u, v), 1.0)

    def overlay_graph(self) -> OverlayGraph:
        """Freeze the live topology into an OverlayGraph."""
        edges = sorted(self.live_edges())
        if not edges:
            return OverlayGraph.from_edges(
                len(self.nodes), np.asarray([], dtype=np.int64),
                np.asarray([], dtype=np.int64),
            )
        eu = np.asarray([e[0] for e in edges], dtype=np.int64)
        ev = np.asarray([e[1] for e in edges], dtype=np.int64)
        lat = np.asarray([self._link_latency(u, v) for u, v in edges])
        return OverlayGraph.from_edges(len(self.nodes), eu, ev, lat)

    def merged_registry(self, top_peers: int = 8) -> MetricsRegistry:
        """All per-node metrics folded into one registry.

        On top of the flattened merge (every ``node.*`` counter summed
        across peers, exactly like the parallel runner merges worker
        shards) the merged view carries:

        * runtime-telemetry series/gauges (``node.runtime.*``) when the
          telemetry sampler ran;
        * per-peer breakdowns for the ``top_peers`` hottest peers by
          wire traffic (rx+tx bytes) under ``node.by_peer.<ident>.*`` —
          capped top-k like the queueing simulator's ``node_util``
          hot-spot gauges, so ``repro obs top`` can name the hottest
          live peers without the snapshot growing with overlay size;
        * a ``node.hop.latency_s`` quantile histogram (plus per-hop
          ``node.hop.latency_s.<h>``) derived from the merged causal
          trace when tracing was enabled: one observation per query
          edge, child's ``node.query.rx`` wall time minus the parent's
          ``node.query.fwd``/``origin`` wall time.
        """
        merged = MetricsRegistry()
        for node in (*self._retired, *self.nodes):
            merged.merge_snapshot(node.metrics.snapshot())
        if len(self.telemetry_registry):
            merged.merge_snapshot(self.telemetry_registry.snapshot())
        if top_peers > 0:
            self._add_by_peer_gauges(merged, top_peers)
        if self.tracing:
            self._add_hop_latencies(merged)
        return merged

    def _add_by_peer_gauges(self, merged: MetricsRegistry,
                            top_peers: int) -> None:
        def traffic(node: PeerNode) -> int:
            counters = node.metrics.snapshot()["counters"]
            return (counters.get("node.rx.bytes", 0)
                    + counters.get("node.tx.bytes", 0))

        ranked = sorted(self.nodes, key=lambda n: (-traffic(n), n.node_id))
        for node in ranked[:top_peers]:
            counters = node.metrics.snapshot()["counters"]
            p = f"node.by_peer.{node.node_id}"
            merged.gauge(f"{p}.traffic_bytes").set(float(traffic(node)))
            merged.gauge(f"{p}.rx_messages").set(float(
                counters.get("node.rx.ping", 0)
                + counters.get("node.rx.pong", 0)
                + counters.get("node.rx.query", 0)
                + counters.get("node.rx.query_hit", 0)
                # Content traffic counts too, or chunk-heavy peers
                # misrank in `repro obs top`.
                + counters.get("node.rx.chunk_request", 0)
                + counters.get("node.rx.manifest", 0)
                + counters.get("node.rx.chunk_data", 0)
            ))
            merged.gauge(f"{p}.tx_messages").set(float(
                counters.get("node.tx.messages", 0)
            ))
            merged.gauge(f"{p}.degree").set(float(len(node.neighbors)))

    def _add_hop_latencies(self, merged: MetricsRegistry) -> None:
        from repro.node.trace import build_query_trees

        overall = merged.quantile("node.hop.latency_s")
        for tree in build_query_trees(self.merged_trace()):
            for edge in tree.edges:
                if edge.latency is None:
                    continue
                lat = max(float(edge.latency), 0.0)
                overall.observe(lat)
                merged.quantile(
                    f"node.hop.latency_s.{edge.hop:02d}"
                ).observe(lat)

    def per_node_snapshots(self) -> Dict[int, dict]:
        """Each node's private metric snapshot, keyed by node id."""
        return {n.node_id: n.metrics.snapshot() for n in self.nodes}

    # ------------------------------------------------------------------
    # Trace readback
    # ------------------------------------------------------------------

    def merged_trace(self, kind: Optional[str] = None) -> List[dict]:
        """Every peer's trace events in one causal ``(t, src, seq)`` order.

        Requires the overlay to have been built with ``trace=True`` (or
        ``trace_dir``); raises otherwise.  Readable after :meth:`stop`
        — the ring buffers survive teardown.
        """
        if not self.tracing:
            raise RuntimeError(
                "overlay was not built with trace=True/trace_dir"
            )
        return merge_events(
            *(n.tracer.events(kind)
              for n in (*self._retired, *self.nodes) if n.tracer)
        )

    def write_merged_trace(self, path: str) -> int:
        """Write the merged causal trace as JSONL; returns the event count.

        The output is a valid single-file trace for ``repro node trace``
        and ``repro obs export-trace`` — identical in content to merging
        the per-peer ``trace_dir`` sinks with
        :func:`repro.obs.merge_traces`.
        """
        events = self.merged_trace()
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, default=_jsonable))
                fh.write("\n")
        return len(events)


async def boot_and_flood(
    graph: OverlayGraph,
    placement: Placement,
    sources: Sequence[int],
    objects: Sequence[int],
    ttl: int,
    config: Optional[NodeConfig] = None,
    capacities: Optional[Sequence[int]] = None,
    trace: bool = False,
    trace_dir: Optional[str] = None,
    telemetry_interval: float = 0.0,
) -> Tuple[List[LiveFloodResult], LiveOverlay]:
    """Boot the overlay, serve a workload, return results + the overlay.

    The overlay is stopped before returning; its structure, metrics,
    and (when tracing) merged causal trace remain readable (link
    tables, registries, and tracer rings survive the teardown).
    """
    overlay = LiveOverlay(graph, placement=placement, config=config,
                          capacities=capacities, trace=trace,
                          trace_dir=trace_dir,
                          telemetry_interval=telemetry_interval)
    await overlay.start()
    try:
        results = []
        for src, obj in zip(sources, objects):
            results.append(
                await overlay.flood(int(src), placement.key_of(int(obj)),
                                    ttl=ttl)
            )
    finally:
        await overlay.stop()
    return results, overlay


def run_live_workload(
    graph: OverlayGraph,
    placement: Placement,
    sources: Sequence[int],
    objects: Sequence[int],
    ttl: int,
    config: Optional[NodeConfig] = None,
    capacities: Optional[Sequence[int]] = None,
    trace: bool = False,
    trace_dir: Optional[str] = None,
    telemetry_interval: float = 0.0,
) -> Tuple[List[LiveFloodResult], LiveOverlay]:
    """Synchronous wrapper around :func:`boot_and_flood`."""
    return asyncio.run(
        boot_and_flood(graph, placement, sources, objects, ttl,
                       config=config, capacities=capacities,
                       trace=trace, trace_dir=trace_dir,
                       telemetry_interval=telemetry_interval)
    )
