"""Stream framing for the live node runtime.

A Gnutella v0.4 connection is a raw TCP byte stream; message boundaries
exist only through the 23-byte descriptor header's declared payload
length.  :class:`StreamFramer` turns arbitrary read chunks back into
typed messages:

* **partial reads** are reassembled — ``feed()`` buffers until a full
  header *and* its declared payload have arrived, however the kernel
  sliced them;
* **payload-level faults** (a Pong that is not 14 bytes, a Query without
  its NUL terminator, a truncated QueryHit record...) are *recoverable*:
  the header told us where the frame ends, so the framer drops exactly
  that frame, counts the fault against the peer, and keeps parsing;
* **header-level faults** (an unknown payload descriptor, a declared
  payload beyond ``max_payload``) are *unrecoverable*: the declared
  length of a half-understood descriptor cannot be trusted, so every
  subsequent "header" would be read from an arbitrary stream position.
  The framer marks itself :attr:`desynced` and refuses further input;
  the owning connection must be closed.

The error taxonomy (and why the split matters on an untrusted socket)
is documented in docs/PROTOCOL.md.
"""

from __future__ import annotations

from typing import List, Optional

from repro.protocol.messages import (
    DESCRIPTOR_HEADER_SIZE,
    GnutellaHeader,
    ProtocolError,
    decode_message,
)

#: Default cap on a declared payload.  The v0.4 spec suggests servents
#: drop descriptors over a few KB; anything near 4 GiB (the field max) is
#: an attack on the reassembly buffer, not a message.
DEFAULT_MAX_PAYLOAD = 65536


class StreamFramer:
    """Incremental decoder of one peer's byte stream.

    Feed raw chunks with :meth:`feed`; complete, validated messages come
    back in arrival order.  All fault accounting is per-instance — one
    framer per connection — so a node can rate-limit or drop a peer on
    its own error behavior without a global registry.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD,
                 tracer=None, peer_id: Optional[int] = None):
        if max_payload < 0:
            raise ValueError(f"max_payload must be >= 0, got {max_payload}")
        self.max_payload = max_payload
        #: Optional :class:`repro.obs.Tracer`; every fault emits exactly
        #: one event — ``frame.drop`` per recoverable payload fault,
        #: ``frame.desync`` on the unrecoverable header fault.
        self.tracer = tracer
        #: Remote node id the traced events are attributed to (-1 when
        #: the peer has not completed its handshake yet).
        self.peer_id = peer_id
        self._buffer = bytearray()
        #: Recoverable payload faults (frames dropped, stream continued).
        self.decode_errors = 0
        #: Messages successfully decoded over the connection's lifetime.
        self.messages_decoded = 0
        #: Total bytes consumed from the stream (valid and dropped frames).
        self.bytes_consumed = 0
        #: Set on an unrecoverable header fault; ``feed`` refuses input.
        self.desynced = False
        #: The most recent fault, for logs/diagnostics.
        self.last_error: Optional[ProtocolError] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet framed (a partial message)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[object]:
        """Absorb a read chunk; return every message it completed.

        Raises :class:`ProtocolError` only through :attr:`last_error` —
        the call itself never raises on wire faults.  Feeding a desynced
        framer raises ``RuntimeError`` (a programming error: the owner
        should have closed the connection).
        """
        if self.desynced:
            raise RuntimeError(
                "framer is desynced; the connection must be closed"
            )
        self._buffer.extend(data)
        messages: List[object] = []
        while len(self._buffer) >= DESCRIPTOR_HEADER_SIZE:
            try:
                header = GnutellaHeader.decode(
                    bytes(self._buffer[:DESCRIPTOR_HEADER_SIZE])
                )
            except ProtocolError as exc:
                # Unknown descriptor: its declared length is untrusted,
                # so no later frame boundary can be found.
                self._desync(exc)
                break
            if header.payload_length > self.max_payload:
                self._desync(ProtocolError(
                    f"declared payload of {header.payload_length} bytes "
                    f"exceeds the {self.max_payload}-byte limit",
                    offset=19,
                ))
                break
            frame_size = DESCRIPTOR_HEADER_SIZE + header.payload_length
            if len(self._buffer) < frame_size:
                break  # partial frame; wait for more bytes
            frame = bytes(self._buffer[:frame_size])
            del self._buffer[:frame_size]
            self.bytes_consumed += frame_size
            try:
                messages.append(decode_message(frame, strict=True))
                self.messages_decoded += 1
            except ProtocolError as exc:
                # The header fixed the frame boundary, so the stream
                # position is still trusted: drop this frame only.
                self.decode_errors += 1
                self.last_error = exc
                if self.tracer is not None:
                    self.tracer.emit(
                        "frame.drop", peer=self._peer_field(),
                        bytes=frame_size, error=str(exc),
                    )
        return messages

    def _peer_field(self) -> int:
        return -1 if self.peer_id is None else int(self.peer_id)

    def _desync(self, exc: ProtocolError) -> None:
        self.decode_errors += 1
        self.last_error = exc
        self.desynced = True
        self._buffer.clear()
        if self.tracer is not None:
            self.tracer.emit(
                "frame.desync", peer=self._peer_field(), error=str(exc),
            )
