"""Chord-style structured overlay.

A faithful simulation of the Chord DHT's routing structure [Stoica et al.]
at the level the paper's comparisons need:

* nodes own random positions on a ``2**m`` identifier ring;
* keys are stored at their *successor* (the first node clockwise from the
  key's ring position);
* every node keeps a successor pointer and ``m`` fingers, finger ``i``
  pointing at ``successor(node + 2**i)``;
* greedy lookup forwards to the closest-preceding finger, resolving in
  O(log n) hops w.h.p.;
* **broadcast** (the Structella-style exhaustive search) partitions the
  ring among fingers so every node is reached exactly once: ``n - 1``
  messages, zero duplicates — the theoretical floor flooding is measured
  against in Section 4.4.

The ring is simulated with sorted-array successor queries, so lookups are
a few ``searchsorted`` calls per hop and the structure scales to the
paper's 100k nodes trivially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.util.hashing import splitmix64
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class ChordLookupResult:
    """Outcome of one Chord lookup."""

    source: int
    key_position: int
    owner: int  # node id responsible for the key
    hops: int
    path: np.ndarray  # node ids visited, source first, owner last

    @property
    def messages(self) -> int:
        """Messages = routing hops (as the paper counts for ABF search)."""
        return self.hops


class ChordRing:
    """A Chord ring over ``n_nodes`` with ``2**bits`` identifier space."""

    def __init__(self, n_nodes: int, bits: int = 40, seed: SeedLike = None):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if not 8 <= bits <= 62:
            raise ValueError(f"bits must be in [8, 62], got {bits}")
        rng = as_generator(seed)
        self.n_nodes = n_nodes
        self.bits = bits
        self.space = 1 << bits

        # Distinct random ring positions, one per node.
        positions = rng.integers(0, self.space, size=n_nodes, dtype=np.int64)
        while np.unique(positions).size != n_nodes:  # pragma: no cover - rare
            positions = rng.integers(0, self.space, size=n_nodes, dtype=np.int64)
        order = np.argsort(positions)
        #: ring positions in ascending order
        self._ring = positions[order]
        #: node id at each ring rank (ids are the original indices)
        self._node_at = order.astype(np.int64)
        #: rank of each node id on the ring
        self._rank_of = np.empty(n_nodes, dtype=np.int64)
        self._rank_of[order] = np.arange(n_nodes)

    # ------------------------------------------------------------------
    # Ring primitives
    # ------------------------------------------------------------------

    def position_of(self, node: int) -> int:
        """Ring position of a node id."""
        check_node_id("node", node, self.n_nodes)
        return int(self._ring[self._rank_of[node]])

    def key_position(self, key: int) -> int:
        """Ring position a key hashes to."""
        return int(splitmix64(np.uint64(key), salt=0xC0) % np.uint64(self.space))

    def successor_of_position(self, position: int) -> int:
        """Node id owning ``position`` (first node at or after it)."""
        rank = int(np.searchsorted(self._ring, position % self.space))
        return int(self._node_at[rank % self.n_nodes])

    def owner_of_key(self, key: int) -> int:
        """Node id responsible for storing ``key``."""
        return self.successor_of_position(self.key_position(key))

    def successor(self, node: int) -> int:
        """The node clockwise-next after ``node``."""
        rank = self._rank_of[node]
        return int(self._node_at[(rank + 1) % self.n_nodes])

    def fingers(self, node: int) -> np.ndarray:
        """Finger table of ``node``: successor(node + 2^i) for each i.

        Deduplicated and excluding the node itself (as real Chord tables
        collapse to on small rings).
        """
        base = self.position_of(node)
        targets = (base + (np.int64(1) << np.arange(self.bits, dtype=np.int64)))
        targets %= self.space
        ranks = np.searchsorted(self._ring, targets) % self.n_nodes
        nodes = self._node_at[ranks]
        nodes = np.unique(nodes)
        return nodes[nodes != node]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def lookup(self, source: int, key: int, max_hops: Optional[int] = None) -> ChordLookupResult:
        """Greedy finger routing from ``source`` to the key's owner."""
        check_node_id("source", source, self.n_nodes)
        target = self.key_position(key)
        owner = self.successor_of_position(target)
        limit = max_hops if max_hops is not None else 4 * self.bits

        path: List[int] = [source]
        current = source
        hops = 0
        while current != owner and hops < limit:
            current = self._closest_preceding(current, target)
            path.append(current)
            hops += 1
        return ChordLookupResult(
            source=source, key_position=target, owner=owner, hops=hops,
            path=np.asarray(path, dtype=np.int64),
        )

    def _closest_preceding(self, node: int, target: int) -> int:
        """Next hop: the finger most closely preceding ``target``.

        Falls back to the plain successor when no finger makes progress
        (the last step of every Chord lookup).
        """
        base = self.position_of(node)
        gap = (target - base) % self.space
        if gap == 0:
            return node
        fingers = self.fingers(node)
        if fingers.size:
            positions = self._ring[self._rank_of[fingers]]
            advances = (positions - base) % self.space
            # Fingers that land strictly inside (node, target]:
            eligible = (advances > 0) & (advances <= gap)
            if eligible.any():
                best = int(np.argmax(np.where(eligible, advances, -1)))
                return int(fingers[best])
        return self.successor(node)


def chord_broadcast_cost(n_nodes: int) -> tuple[int, int]:
    """(messages, duplicates) of a Structella-style exhaustive broadcast.

    Partition broadcast over the ring reaches every node exactly once:
    ``n - 1`` messages, zero duplicates — the floor that Section 4.4
    compares flooding's converging-phase duplicates against.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return n_nodes - 1, 0
