"""Structured-overlay baseline (Chord-style DHT).

The paper invokes structured P2P systems twice without measuring them:
"a DHT-based flooding mechanism such as Structella may give better
performance" for very low replication (Section 4.4), and identifier-search
performance "comparable to that of structured P2P systems" (abstract /
Section 4.6).  This package implements the baseline those claims point at:
a Chord-style ring with finger tables, O(log n) exact-key lookup, and
Structella-style duplicate-free broadcast over the structure.
"""

from repro.structured.chord import (
    ChordLookupResult,
    ChordRing,
    chord_broadcast_cost,
)

__all__ = [
    "ChordRing",
    "ChordLookupResult",
    "chord_broadcast_cost",
]
