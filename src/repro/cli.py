"""Command-line interface for quick experiments.

Usage examples::

    python -m repro build --nodes 5000 --seed 7
    python -m repro flood --nodes 2000 --ttl 4 --replication 0.005
    python -m repro identifier --nodes 2000 --replication 0.005 --queries 50
    python -m repro analyze --nodes 2000 --topology makalu
    python -m repro traffic --nodes 5000 --queries 100
    python -m repro churn --nodes 500 --duration 150

Every subcommand prints a short human-readable report; all accept
``--seed`` for reproducibility.  All subcommands also accept the
observability flags (off by default, see docs/OBSERVABILITY.md):

* ``--metrics-json PATH`` — write the run's metric snapshot as JSON;
* ``--trace PATH`` — stream structured events (JSONL) to ``PATH``;
* ``--profile`` — print a per-phase wall-time report after the run;
* ``--profile-json PATH`` — write the profile (aggregates + span
  timeline) as JSON, convertible via ``repro obs export-trace``.

The artifacts feed the ``repro obs`` toolkit: ``repro obs report`` for a
human-readable summary, ``repro obs diff`` for CI regression gating, and
``repro obs export-trace`` for Chrome ``chrome://tracing`` conversion.

The CLI is a thin veneer over the public API — anything here can be done
in a few lines of Python (see ``examples/``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.analysis import (
    algebraic_connectivity,
    convergence_boundary,
    failure_sweep,
    path_stats,
)
from repro.core import MakaluConfig, makalu_graph
from repro.netmodel import EuclideanModel, SyntheticPlanetLabModel, TransitStubModel
from repro.search import (
    AbfRouter,
    build_attenuated_filters,
    flood_queries,
    identifier_queries,
    min_ttl_for_success,
    place_objects,
    summarize,
)
from repro.sim import ChurnConfig, ChurnSimulation
from repro.topology import k_regular_graph, powerlaw_graph, two_tier_graph
from repro.trace import traffic_comparison

MODELS = {
    "euclidean": lambda n, seed: EuclideanModel(n, seed=seed),
    "transit-stub": lambda n, seed: TransitStubModel(n, seed=seed),
    "planetlab": lambda n, seed: SyntheticPlanetLabModel(n, seed=seed),
}


def _make_model(args):
    return MODELS[args.model](args.nodes, args.seed)


def _make_overlay(args):
    model = _make_model(args)
    topology = getattr(args, "topology", "makalu")
    if topology == "makalu":
        config = MakaluConfig(
            use_rating_cache=not getattr(args, "no_rating_cache", False),
            rating_crosscheck=getattr(args, "rating_crosscheck", False),
            refine_mode=getattr(args, "refine_mode", "sequential"),
        )
        return makalu_graph(model=model, config=config, seed=args.seed + 1)
    if topology == "kregular":
        return k_regular_graph(args.nodes, 10, model=model, seed=args.seed + 1)
    if topology == "powerlaw":
        return powerlaw_graph(args.nodes, model=model, seed=args.seed + 1)
    if topology == "twotier":
        return two_tier_graph(args.nodes, model=model, seed=args.seed + 1).graph
    raise ValueError(f"unknown topology {topology!r}")


def cmd_build(args) -> int:
    """Build an overlay and print structural statistics."""
    t0 = time.perf_counter()
    graph = _make_overlay(args)
    elapsed = time.perf_counter() - t0
    degs = graph.degrees
    print(f"built {args.topology} overlay: {graph.n_nodes} nodes, "
          f"{graph.n_edges} edges in {elapsed:.1f}s")
    print(f"  degrees: min {degs.min()}, mean {degs.mean():.2f}, max {degs.max()}")
    print(f"  connected: {graph.is_connected()}")
    print(f"  mean link latency: {graph.latency.mean():.2f}")
    return 0


def cmd_flood(args) -> int:
    """Run a batch of flooding queries and summarize them."""
    graph = _make_overlay(args)
    placement = place_objects(
        graph.n_nodes, args.objects, args.replication, seed=args.seed + 2
    )
    results = flood_queries(
        graph, placement, args.queries, ttl=args.ttl, seed=args.seed + 3,
        batch_size=args.batch_size, n_workers=args.workers,
    )
    records = [r.record() for r in results]
    summary = summarize(records)
    hits = np.asarray([r.first_hit_hop for r in results])
    dup = float(np.mean([r.duplicate_fraction for r in results]))
    print(f"flooding on {args.topology} ({graph.n_nodes} nodes, TTL {args.ttl}, "
          f"{100 * args.replication:.2f}% replication):")
    print(f"  {summary}")
    print(f"  duplicate messages: {100 * dup:.1f}%")
    print(f"  min TTL for 95% success: "
          f"{min_ttl_for_success(hits, 0.95, max_ttl=args.ttl)}")
    return 0


def cmd_identifier(args) -> int:
    """Run a batch of ABF identifier queries and summarize them."""
    graph = _make_overlay(args)
    placement = place_objects(
        graph.n_nodes, args.objects, args.replication, seed=args.seed + 2
    )
    if args.per_link:
        from repro.search import build_per_link_filters

        filters = build_per_link_filters(
            graph, placement=placement, depth=args.depth
        )
        variant = "per-link"
    else:
        filters = build_attenuated_filters(
            graph, placement=placement, depth=args.depth
        )
        variant = "per-node"
    router = AbfRouter(graph, filters)
    results = identifier_queries(
        router, placement, args.queries, ttl=args.ttl, seed=args.seed + 3,
        n_workers=args.workers,
    )
    summary = summarize([r.record() for r in results])
    print(f"ABF identifier search on {args.topology} ({graph.n_nodes} nodes, "
          f"{variant} depth {args.depth}, TTL {args.ttl}):")
    print(f"  {summary}")
    return 0


def cmd_response(args) -> int:
    """Measure the response-time distribution of flooded queries."""
    import numpy as np

    from repro.search import response_time_distribution

    graph = _make_overlay(args)
    placement = place_objects(
        graph.n_nodes, args.objects, args.replication, seed=args.seed + 2
    )
    times = response_time_distribution(
        graph, placement, args.queries, ttl=args.ttl, seed=args.seed + 3
    )
    finite = times[np.isfinite(times)]
    print(f"query response times on {args.topology} ({graph.n_nodes} nodes, "
          f"TTL {args.ttl}, round trip):")
    print(f"  resolved: {100 * np.isfinite(times).mean():.1f}% of "
          f"{args.queries} queries")
    if finite.size:
        print(f"  median {np.median(finite):.1f}  p90 "
              f"{np.percentile(finite, 90):.1f}  p99 "
              f"{np.percentile(finite, 99):.1f}  (latency units)")
    return 0


def cmd_capacity(args) -> int:
    """Serve a continuous trace-shaped workload through shared queues."""
    from repro.sim import (
        draw_workload_sources,
        saturation_sweep,
        scale_workload,
        simulate_workload,
    )
    from repro.trace import GNUTELLA_2003, GNUTELLA_2006
    from repro.trace.workload import generate_workload

    stats = GNUTELLA_2006 if args.trace_stats == "2006" else GNUTELLA_2003
    graph = _make_overlay(args)
    placement = place_objects(
        graph.n_nodes, args.objects, args.replication, seed=args.seed + 2
    )
    workload = generate_workload(
        stats, args.duration, n_objects=args.objects,
        zipf_exponent=args.zipf, seed=args.seed + 4,
    )
    if args.rate_scale != 1.0:
        workload = scale_workload(workload, args.rate_scale)
    sources = draw_workload_sources(
        graph.n_nodes, workload.n_queries, seed=args.seed + 5
    )
    print(f"continuous load on {args.topology} ({graph.n_nodes} nodes, "
          f"TTL {args.ttl}, {workload.n_queries} queries @ "
          f"{workload.rate:.1f}/s, service {args.service_time:g}s):")

    if args.sweep:
        multipliers = [float(m) for m in args.sweep.split(",")]
        sweep = saturation_sweep(
            graph, workload, placement, args.ttl, multipliers=multipliers,
            sources=sources, service_time=args.service_time,
            latency_scale=args.latency_unit,
            metric_prefix="queue", top_k=args.top,
        )
        for m, r in zip(sweep.multipliers, sweep.results):
            print(f"  x{m:<5g} p50 {r.response_quantile(0.5):8.3f}  "
                  f"p99 {r.response_quantile(0.99):8.3f}  "
                  f"util.max {r.utilization.max(initial=0.0):.3f}  "
                  f"success {100 * r.success_rate:5.1f}%"
                  f"{'  [saturated]' if r.is_saturated() else ''}")
        sat = sweep.saturation_multiplier
        print(f"  saturation point: "
              f"{'not reached' if sat != sat else f'x{sat:g}'}")
        return 0

    result = simulate_workload(
        graph, workload, placement, args.ttl, sources=sources,
        service_time=args.service_time, latency_scale=args.latency_unit,
        top_k=args.top,
    )
    print(f"  resolved: {100 * result.success_rate:.1f}%  "
          f"messages: {result.messages}  makespan: {result.makespan:.2f}s")
    print(f"  response  p50 {result.response_quantile(0.5):.3f}  "
          f"p90 {result.response_quantile(0.9):.3f}  "
          f"p99 {result.response_quantile(0.99):.3f}  "
          f"p999 {result.response_quantile(0.999):.3f}  (virtual s)")
    util = result.utilization
    print(f"  utilization  max {util.max(initial=0.0):.3f}  "
          f"mean {float(util.mean()) if util.size else 0.0:.3f}"
          f"{'  [saturated]' if result.is_saturated() else ''}")
    hot = ", ".join(
        f"{int(v)}:{util[v]:.2f}" for v in result.hot_nodes(args.top)
    )
    print(f"  hottest nodes (id:util): {hot}")
    return 0


def cmd_analyze(args) -> int:
    """Print path, spectral and fault-tolerance analysis of an overlay."""
    graph = _make_overlay(args)
    giant, _ = graph.giant_component()
    print(f"{args.topology} overlay on {graph.n_nodes} nodes "
          f"({giant.n_nodes} in giant component):")
    stats = path_stats(giant, n_sources=min(200, giant.n_nodes), seed=args.seed)
    print(f"  {stats}")
    print(f"  algebraic connectivity: {algebraic_connectivity(giant):.4f}")
    print(f"  convergence boundary: "
          f"{convergence_boundary(giant, n_sources=10, seed=args.seed):.1f} hops")
    for report in failure_sweep(graph, [0.1, 0.3], mode="top-degree",
                                with_spectrum=False):
        print(f"  after {100 * report.fraction_failed:.0f}% targeted failures: "
              f"{report.n_components} components, giant "
              f"{100 * report.giant_fraction:.1f}%")
    return 0


def cmd_traffic(args) -> int:
    """Regenerate the Table 2 traffic comparison."""
    graph = _make_overlay(args)
    cmp = traffic_comparison(graph, ttl=args.ttl, n_queries=args.queries,
                             seed=args.seed + 2)
    print("Table 2 traffic comparison (2006 trace statistics):")
    print(f"  {cmp.gnutella}")
    print(f"  {cmp.makalu}")
    print(f"  bandwidth savings: {100 * cmp.bandwidth_savings:.0f}%  "
          f"success ratio: {cmp.success_ratio:.1f}x")
    return 0


def _load_faults(args):
    """Resolve ``--faults`` into a scenario, or None when absent.

    Raises SystemExit-worthy errors as ValueError subclasses; callers
    turn them into one-line messages (never tracebacks).
    """
    name = getattr(args, "faults", None)
    if not name:
        return None
    from repro.faults import load_scenario

    return load_scenario(name)


def _make_recovery(args):
    """Resolve the ``--recovery*`` flags into a policy, or None."""
    if not getattr(args, "recovery", False):
        return None
    from repro.core.maintenance import RecoveryPolicy

    return RecoveryPolicy(
        max_retries=args.recovery_retries,
        base_delay=args.recovery_delay,
        backoff=args.recovery_backoff,
        host_cache_fallback=not args.no_fallback,
    )


def _run_churn_sim(args, scenario, recovery):
    """Build and run a ChurnSimulation; shared by churn and faults run."""
    sim = ChurnSimulation(
        model=_make_model(args),
        churn_config=ChurnConfig(
            mean_session=args.session, mean_offline=args.offline,
            snapshot_interval=args.duration / 6,
            probe_queries=args.probe_queries,
            probe_ttl=args.probe_ttl,
            health_interval=args.health_interval,
            health_sources=args.health_sources,
        ),
        seed=args.seed,
        faults=scenario,
        recovery=recovery,
    )
    snapshots = sim.run(args.duration)
    return sim, snapshots


def _print_churn_report(args, sim, snapshots, scenario) -> None:
    extras = []
    if scenario is not None:
        extras.append(f"faults={scenario.name}")
    if sim.recovery is not None:
        extras.append("recovery=on")
    suffix = f" [{', '.join(extras)}]" if extras else ""
    print(f"churn on {args.nodes} Makalu nodes "
          f"(sessions ~Exp({args.session}), offline ~Exp({args.offline}))"
          f"{suffix}:")
    probing = args.probe_queries > 0
    for s in snapshots:
        line = (f"  t={s.time:6.0f}  online={s.n_online:5d}  "
                f"components={s.n_components:3d}  "
                f"giant={100 * s.giant_fraction:5.1f}%  "
                f"mean degree={s.mean_degree:.1f}")
        if probing:
            line += f"  search success={100 * s.search_success:5.1f}%"
        print(line)
    if sim.health_samples:
        print(f"health samples (every {args.health_interval:g} time units):")
        for h in sim.health_samples:
            print(f"  t={h.time:6.0f}  expansion={h.expansion:.3f}  "
                  f"spectral gap={h.spectral_gap:.3f}  "
                  f"filter staleness={100 * h.filter_staleness:5.1f}%  "
                  f"isolated={100 * h.isolated_fraction:4.1f}%")
    if sim.injector is not None:
        print("fault injection summary:")
        for k, v in sorted(sim.injector.summary().items()):
            if v:
                print(f"  {k}: {v}")
        session = obs.active()
        if session is not None:
            counters = session.metrics.snapshot().get("counters", {})
            recov = {k: v for k, v in sorted(counters.items())
                     if k.startswith("recovery.")}
            if recov:
                print("recovery counters:")
                for k, v in recov.items():
                    print(f"  {k}: {v}")


def cmd_churn(args) -> int:
    """Run the churn simulation and print per-snapshot health."""
    try:
        scenario = _load_faults(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recovery = _make_recovery(args)
    sim, snapshots = _run_churn_sim(args, scenario, recovery)
    _print_churn_report(args, sim, snapshots, scenario)
    return 0


def cmd_node_run(args) -> int:
    """Run one live peer until the duration elapses."""
    import asyncio

    from repro.node import NodeConfig, PeerNode

    store = set()
    if args.store:
        store = {int(k) for k in args.store.split(",")}

    async def _run() -> None:
        node = PeerNode(args.node_id, capacity=args.capacity, store=store,
                        config=NodeConfig(default_ttl=args.ttl))
        await node.start(port=args.port)
        print(f"node {args.node_id} listening on {node.host}:{node.port}")
        for addr in args.connect or []:
            host, _, port = addr.rpartition(":")
            peer = await node.connect(host or "127.0.0.1", int(port))
            print(f"  connected to node {peer} at {addr}")
        await asyncio.sleep(args.duration)
        counters = node.metrics.snapshot()["counters"]
        rx = sum(v for k, v in counters.items() if k.startswith("node.rx."))
        print(f"  degree {len(node.neighbors)}, {rx} messages received, "
              f"{counters.get('node.protocol_errors', 0)} protocol errors")
        await node.stop()

    asyncio.run(_run())
    return 0


def cmd_node_boot(args) -> int:
    """Boot N live peers into a seeded overlay and flood queries."""
    from repro.node import NodeConfig, build_query_trees, run_live_workload
    from repro.search import draw_query_workload

    session = obs.active()
    live_trace = (
        (session is not None and session.tracer is not None)
        or args.trace_dir is not None
    )
    graph = _make_overlay(args)
    placement = place_objects(
        graph.n_nodes, args.objects, args.replication, seed=args.seed + 2
    )
    sources, objects = draw_query_workload(
        graph, placement, args.queries, seed=args.seed + 3
    )
    results, overlay = run_live_workload(
        graph, placement, sources, objects, args.ttl,
        config=NodeConfig(default_ttl=args.ttl),
        trace=live_trace, trace_dir=args.trace_dir,
        telemetry_interval=args.telemetry_interval,
    )
    merged = overlay.merged_registry()
    snap = merged.snapshot()
    counters = snap["counters"]
    success = sum(1 for r in results if r.success) / len(results)
    messages = sum(r.total_messages for r in results)
    duplicates = sum(r.duplicates for r in results)
    edges = overlay.live_edges()
    seeded = {(u, v) for u, v, _ in graph.iter_edges()}
    print(f"live overlay: {graph.n_nodes} asyncio peers on {args.topology} "
          f"topology, TTL {args.ttl}:")
    print(f"  edges held: {len(edges)}/{len(seeded)} seeded "
          f"({len(seeded ^ edges)} mismatched)")
    print(f"  queries: {len(results)}, success {100 * success:.1f}%, "
          f"{messages} messages ({duplicates} duplicates)")
    print(f"  wire health: "
          f"{counters.get('node.protocol_errors', 0)} protocol errors, "
          f"{counters.get('node.desyncs', 0)} desyncs, "
          f"{counters.get('node.queryhit.unroutable', 0)} unroutable hits")
    if live_trace:
        events = overlay.merged_trace()
        trees = build_query_trees(events)
        complete = sum(1 for t in trees if t.complete)
        print(f"  causal trace: {len(events)} events, {len(trees)} query "
              f"tree(s) ({complete} complete)")
        if args.trace_dir is not None:
            print(f"  per-peer sinks in {args.trace_dir}/ "
                  f"(merge with: repro node trace {args.trace_dir})")
        if session is not None and session.tracer is not None:
            # Replay the merged per-peer events into the session sink so
            # the --trace file is the causally ordered overlay trace.
            for event in events:
                fields = {k: v for k, v in event.items()
                          if k not in ("seq", "kind")}
                session.tracer.emit(event.get("kind", "event"), **fields)
    if args.telemetry_interval > 0:
        samples = counters.get("node.runtime.samples", 0)
        lag = snap["quantiles"].get("node.runtime.loop_lag_s.q", {})
        print(f"  telemetry: {samples} runtime samples, "
              f"{lag.get('count', 0)} loop-lag observations")
    if session is not None:
        session.metrics.merge_snapshot(snap)
    return 0


def cmd_node_trace(args) -> int:
    """Merge per-peer trace sinks and reconstruct causal query trees."""
    from repro.node.trace import build_query_trees, format_tree_report
    from repro.obs.tracer import merge_traces

    paths = []
    for inp in args.inputs:
        if os.path.isdir(inp):
            paths.extend(sorted(
                os.path.join(inp, name) for name in os.listdir(inp)
                if name.endswith(".jsonl")
            ))
        else:
            paths.append(inp)
    if not paths:
        print("error: no trace files found", file=sys.stderr)
        return 2
    try:
        events = merge_traces(*paths)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trees = build_query_trees(events)
    print(f"merged {len(paths)} sink(s)")
    print(format_tree_report(trees, n_events=len(events),
                             verbose=args.verbose))
    if args.export:
        from repro.obs.report import write_chrome_trace

        n = write_chrome_trace(events, args.export,
                               source=";".join(paths))
        print(f"chrome trace written to {args.export} ({n} records)")
    complete = sum(1 for t in trees if t.complete)
    if args.require_complete > 0 and complete < args.require_complete:
        print(f"error: only {complete} complete query tree(s) "
              f"reconstructed, need {args.require_complete}",
              file=sys.stderr)
        return 1
    return 0


def cmd_node_parity(args) -> int:
    """Replay one seeded scenario through sim and live; diff the arms."""
    import json

    from repro.node import ParityScenario, run_parity
    from repro.obs.report import diff_metrics, format_diff

    scenario = ParityScenario(
        n_nodes=args.nodes, n_queries=args.queries, ttl=args.ttl,
        n_objects=args.objects, replication=args.replication,
        seed=args.seed,
    )
    try:
        report = run_parity(scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path, snap in ((args.sim_out, report.sim_snapshot),
                       (args.live_out, report.live_snapshot)):
        if path:
            with open(path, "w") as fh:
                json.dump(snap, fh, indent=2, default=float)
                fh.write("\n")
            print(f"snapshot written to {path}")
    deltas = diff_metrics(report.sim_snapshot, report.live_snapshot)
    parity_deltas = [d for d in deltas if d.name.startswith("parity.")]
    print(f"sim vs live on {args.nodes} nodes ({args.queries} queries, "
          f"TTL {args.ttl}):")
    print(format_diff(parity_deltas, threshold=args.threshold,
                      show_unchanged=True))
    regressions = [d for d in deltas if d.exceeds(args.threshold)]
    if regressions:
        print(f"{len(regressions)} metric(s) diverged beyond "
              f"{100 * args.threshold:g}%", file=sys.stderr)
        if args.fail_on_divergence:
            return 1
    return 0


def cmd_node_churn(args) -> int:
    """Replay a fault scenario against a running live overlay."""
    from repro.faults import load_scenario
    from repro.node.churn import run_live_churn_sync

    try:
        scenario = load_scenario(args.scenario)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_live_churn_sync(
        scenario, n_nodes=args.nodes, n_objects=args.objects,
        seed=args.seed, k=args.k, duration=args.duration,
        time_scale=args.time_scale, heal_enabled=not args.no_heal,
        heal_interval=args.heal_interval,
        read_repair=not args.no_read_repair,
        snapshot_interval=args.snapshot_interval,
        mean_offline=args.mean_offline,
    )
    rep, d = result.report, result.durability
    print(f"live churn: {args.nodes} asyncio peers under {scenario.name!r}, "
          f"{rep.duration:g} virtual seconds "
          f"(time scale {args.time_scale:g})")
    skipped = (f" ({', '.join(f'{k}={v}' for k, v in sorted(rep.skipped.items()))})"
               if rep.skipped else "")
    print(f"  membership: {rep.kills} kills, {rep.revives} revives, "
          f"{rep.events_skipped} scenario event(s) not injectable "
          f"live{skipped}")
    print(f"  healing:    {rep.heal_ticks} ticks, {d.heal_pushes} pushes "
          f"({d.heal_bytes} bytes), {d.heal_trims} trims")
    print(f"  rebalance:  {d.rebalance_pushes} pushes "
          f"({d.rebalance_bytes} bytes) on rejoin")
    print(f"  durability: availability {d.availability:.4f} "
          f"(min {d.min_availability:.4f}), lost {d.objects_lost}, "
          f"degraded {d.objects_degraded}")
    for s in rep.samples:
        print(f"    t={s.time:6.1f}  avail {s.availability:.3f}  "
              f"live/k {s.mean_live_replicas:.2f}  "
              f"degraded {s.n_degraded}  lost {s.n_lost}")
    session = obs.active()
    if session is not None:
        session.metrics.merge_snapshot(
            result.overlay.merged_registry().snapshot()
        )
        g = session.metrics.gauge
        g("live_churn.availability").set(d.availability)
        g("live_churn.min_availability").set(d.min_availability)
        g("live_churn.objects_lost").set(float(d.objects_lost))
        g("live_churn.objects_degraded").set(float(d.objects_degraded))
        g("live_churn.kills").set(float(rep.kills))
        g("live_churn.revives").set(float(rep.revives))
        g("live_churn.heal_ticks").set(float(rep.heal_ticks))
        g("live_churn.heal_pushes").set(float(d.heal_pushes))
        g("live_churn.heal_trims").set(float(d.heal_trims))
        g("live_churn.rebalance_pushes").set(float(d.rebalance_pushes))
        g("live_churn.events_skipped").set(float(rep.events_skipped))
    if args.report_json:
        import json

        doc = {
            "schema_version": 1,
            "scenario": scenario.name,
            "n_nodes": args.nodes,
            "seed": args.seed,
            "duration": rep.duration,
            "kills": rep.kills,
            "revives": rep.revives,
            "heal_ticks": rep.heal_ticks,
            "rebalance_pushes": rep.rebalance_pushes,
            "skipped": dict(rep.skipped),
            "durability": d.to_dict(),
        }
        with open(args.report_json, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"report written to {args.report_json}")
    return 0


def cmd_faults_list(args) -> int:
    """List the built-in fault scenarios."""
    from repro.faults import BUILTIN_SCENARIOS

    for name, scenario in sorted(BUILTIN_SCENARIOS.items()):
        print(f"{name} ({scenario.n_events} events)")
        print(f"  {scenario.description}")
    return 0


def cmd_faults_run(args) -> int:
    """Run a fault scenario against a churned Makalu overlay."""
    try:
        scenario = _load_faults(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recovery = _make_recovery(args)
    sim, snapshots = _run_churn_sim(args, scenario, recovery)
    _print_churn_report(args, sim, snapshots, scenario)
    return 0


def _run_durability_cli(args):
    from repro.content.experiment import hub_failure_scenario, run_durability

    scenario = args.scenario
    if scenario == "hub-failure":
        scenario = hub_failure_scenario()
    elif scenario == "none":
        scenario = None
    return run_durability(
        n_nodes=args.nodes, n_objects=args.objects, duration=args.duration,
        seed=args.seed, scenario=scenario, k=args.k,
        heal_enabled=not args.no_heal, heal_interval=args.heal_interval,
        read_repair=not args.no_read_repair, fetch_probes=args.fetch_probes,
    )


def cmd_content_place(args) -> int:
    """Preview a content placement; optionally dump the manifests."""
    from repro.content.experiment import build_placement

    graph, objects, placement = build_placement(
        n_nodes=args.nodes, n_objects=args.objects, seed=args.seed, k=args.k,
    )
    total = sum(o.size for o in objects)
    chunks = sum(o.manifest.n_chunks for o in objects)
    print(f"placed {placement.n_objects} objects "
          f"({total} bytes, {chunks} chunks) on {graph.n_nodes} nodes, k={args.k}")
    print(f"  mean replicas/object   {placement.mean_replicas:.2f}")
    print(f"  effective repl. ratio  {placement.effective_replication_ratio:.4f}")
    print(f"  neighbor-bias fraction {placement.neighbor_bias_fraction(graph):.2f}")
    if args.verbose:
        for obj in objects:
            holders = ",".join(str(h) for h in placement.replicas(obj.key))
            print(f"  key={obj.key} size={obj.size} "
                  f"chunks={obj.manifest.n_chunks} holders=[{holders}]")
    if args.manifest_json:
        import json

        doc = {
            "schema_version": 1,
            "n_objects": placement.n_objects,
            "manifests": [o.manifest.to_dict() for o in objects],
        }
        with open(args.manifest_json, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"manifests written to {args.manifest_json}")
    return 0


def cmd_content_fetch(args) -> int:
    """Run the durability sim, then issue extra end-of-run fetches."""
    from repro.util.rng import as_generator, derive_seed

    result = _run_durability_cli(args)
    plane, sim = result.plane, result.sim
    before = dict(plane.stats)
    rng = as_generator(derive_seed(args.seed, 0xFE7C4))
    keys = plane.placement.object_keys
    online = [u for u in range(sim.builder.n_nodes) if sim.online[u]]
    if not online:
        print("no nodes online at end of run; cannot issue fetches")
        return 1
    for _ in range(args.queries):
        src = online[int(rng.integers(len(online)))]
        key = int(keys[int(rng.integers(len(keys)))])
        plane.fetch(src, key)
    s = plane.stats
    extra_req = s["fetch.requests"] - before["fetch.requests"]
    extra_hit = s["fetch.hits"] - before["fetch.hits"]
    print(f"in-run probes: {before['fetch.requests']} requests, "
          f"{before['fetch.hits']} hits, {before['fetch.failures']} failures")
    print(f"end-of-run fetches: {extra_hit}/{extra_req} hit "
          f"({100 * extra_hit / max(1, extra_req):.1f}%)")
    print(f"read-repair: {s['repair.pushes']} pushes, "
          f"{s['repair.bytes']} bytes")
    return 0


def cmd_content_heal(args) -> int:
    """Run the durability sim and print the healing ledger."""
    result = _run_durability_cli(args)
    r = result.report
    print(f"scenario {result.scenario or 'none'}: "
          f"healing {'on' if result.heal_enabled else 'off'}, "
          f"k={r.k}, {r.n_objects} objects")
    print(f"  heal ticks   {r.heal_ticks}")
    print(f"  heal pushes  {r.heal_pushes} ({r.heal_bytes} bytes)")
    print(f"  heal trims   {r.heal_trims}")
    print(f"  read-repair  {r.repair_pushes} pushes ({r.repair_bytes} bytes)")
    print(f"  lost         {r.objects_lost}  degraded {r.objects_degraded}")
    print(f"  availability {r.availability:.4f} (min {r.min_availability:.4f})")
    return 0


def cmd_content_report(args) -> int:
    """Full durability report: per-snapshot samples plus the final ledger."""
    result = _run_durability_cli(args)
    print(f"{'t':>6}  {'avail':>6}  {'live/k':>7}  "
          f"{'degraded':>8}  {'lost':>4}")
    for s in result.samples:
        print(f"{s.time:6.1f}  {s.availability:6.3f}  "
              f"{s.mean_live_replicas:7.2f}  {s.n_degraded:8d}  {s.n_lost:4d}")
    r = result.report
    print(f"final: availability={r.availability:.4f} "
          f"min={r.min_availability:.4f} lost={r.objects_lost} "
          f"heal_pushes={r.heal_pushes} heal_bytes={r.heal_bytes} "
          f"repair_pushes={r.repair_pushes} bytes_placed={r.bytes_placed}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.report.to_dict(), fh, indent=1)
            fh.write("\n")
        print(f"report written to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Makalu overlay reproduction — quick experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, topology=True):
        p.add_argument("--nodes", type=int, default=2000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--model", choices=sorted(MODELS), default="euclidean")
        p.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write a JSON metrics snapshot of the run")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="stream structured JSONL trace events to PATH")
        p.add_argument("--profile", action="store_true",
                       help="print a per-phase wall-time report")
        p.add_argument("--profile-json", metavar="PATH", default=None,
                       help="write the profile (aggregates + span "
                            "timeline) as JSON")
        if topology:
            p.add_argument(
                "--topology",
                choices=["makalu", "kregular", "powerlaw", "twotier"],
                default="makalu",
            )
            p.add_argument("--no-rating-cache", action="store_true",
                           help="rate neighbors with the scalar kernel "
                                "instead of the incremental rating cache "
                                "(same ratings, slower)")
            p.add_argument("--rating-crosscheck", action="store_true",
                           help="verify every cached rating against the "
                                "scalar kernel (debugging; very slow)")
            p.add_argument("--refine-mode",
                           choices=["sequential", "batch"],
                           default="sequential",
                           help="refinement engine: the per-node protocol "
                                "replay, or vectorized synchronous rounds "
                                "(much faster at 10k+ nodes; statistically "
                                "equivalent overlays)")

    p = sub.add_parser("build", help="build an overlay and print its stats")
    common(p)
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("flood", help="run flooding queries")
    common(p)
    p.add_argument("--ttl", type=int, default=4)
    p.add_argument("--replication", type=float, default=0.005)
    p.add_argument("--objects", type=int, default=10)
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (0 = one per CPU core; "
                        "results are bit-identical at any setting)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="queries advanced together by the vectorized "
                        "flood kernel (default: scalar loop when "
                        "--workers is 1)")
    p.set_defaults(func=cmd_flood)

    p = sub.add_parser("identifier", help="run ABF identifier queries")
    common(p)
    p.add_argument("--ttl", type=int, default=25)
    p.add_argument("--depth", type=int, default=3)
    p.add_argument("--per-link", action="store_true",
                   help="use exact per-link (Rhea-Kubiatowicz) filters")
    p.add_argument("--replication", type=float, default=0.005)
    p.add_argument("--objects", type=int, default=10)
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (results are bit-identical "
                        "at any setting)")
    p.set_defaults(func=cmd_identifier)

    p = sub.add_parser("response", help="query response-time distribution")
    common(p)
    p.add_argument("--ttl", type=int, default=4)
    p.add_argument("--replication", type=float, default=0.005)
    p.add_argument("--objects", type=int, default=10)
    p.add_argument("--queries", type=int, default=100)
    p.set_defaults(func=cmd_response)

    p = sub.add_parser(
        "capacity",
        help="serve a continuous workload through shared per-node queues",
    )
    common(p)
    p.add_argument("--ttl", type=int, default=5)
    p.add_argument("--replication", type=float, default=0.01)
    p.add_argument("--objects", type=int, default=200)
    p.add_argument("--duration", type=float, default=2.0,
                   help="workload length in virtual seconds")
    p.add_argument("--trace-stats", choices=["2003", "2006"], default="2006",
                   help="Gnutella trace whose query rate shapes arrivals")
    p.add_argument("--zipf", type=float, default=0.8,
                   help="object-popularity Zipf exponent")
    p.add_argument("--service-time", type=float, default=0.005,
                   help="per-message processing time at each node")
    p.add_argument("--latency-unit", type=float, default=0.001,
                   help="seconds per link-latency unit (overlay latencies "
                        "are in the network model's ~ms units; arrivals "
                        "are in seconds)")
    p.add_argument("--rate-scale", type=float, default=1.0,
                   help="multiply the trace arrival rate")
    p.add_argument("--sweep", metavar="M1,M2,...", default=None,
                   help="rate multipliers for a saturation sweep "
                        "(e.g. 1,2,4,8); same queries at every rate")
    p.add_argument("--top", type=int, default=5,
                   help="hot nodes to report")
    p.set_defaults(func=cmd_capacity)

    p = sub.add_parser("analyze", help="structural + fault-tolerance analysis")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("traffic", help="Table 2 traffic comparison")
    common(p, topology=False)
    p.set_defaults(topology="makalu")
    p.add_argument("--ttl", type=int, default=5)
    p.add_argument("--queries", type=int, default=100)
    p.set_defaults(func=cmd_traffic)

    def churn_args(p, faults_flag=True):
        p.add_argument("--duration", type=float, default=150.0)
        p.add_argument("--session", type=float, default=100.0)
        p.add_argument("--offline", type=float, default=25.0)
        p.add_argument("--probe-queries", type=int, default=0,
                       help="flooding probes per snapshot (0 disables; "
                            "probes see any active message-loss window)")
        p.add_argument("--probe-ttl", type=int, default=4)
        p.add_argument("--health-interval", type=float, default=0.0,
                       help="structural-health sampling period (0 disables; "
                            "sampling never perturbs the churn trajectory)")
        p.add_argument("--health-sources", type=int, default=8,
                       help="BFS/expansion sources per health sample")
        if faults_flag:
            p.add_argument("--faults", metavar="SCENARIO", default=None,
                           help="fault scenario: a builtin name (see "
                                "'repro faults list') or a JSON file path")
        p.add_argument("--recovery", action="store_true",
                       help="enable retry-with-backoff neighbor recovery "
                            "instead of one-shot repair")
        p.add_argument("--recovery-retries", type=int, default=3)
        p.add_argument("--recovery-delay", type=float, default=2.0,
                       help="base retry delay (doubles per attempt by "
                            "default)")
        p.add_argument("--recovery-backoff", type=float, default=2.0)
        p.add_argument("--no-fallback", action="store_true",
                       help="disable the bounded host-cache fallback on "
                            "the final recovery attempt")

    p = sub.add_parser("churn", help="run the churn simulation")
    common(p, topology=False)
    churn_args(p)
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser("node",
                       help="live asyncio overlay "
                            "(run / boot / parity / churn)")
    nsub = p.add_subparsers(dest="node_command", required=True)

    np_ = nsub.add_parser("run", help="run one live peer")
    np_.add_argument("--node-id", type=int, default=0)
    np_.add_argument("--port", type=int, default=0,
                     help="listening port (0 = ephemeral)")
    np_.add_argument("--capacity", type=int, default=None,
                     help="Makalu degree capacity (enables live pruning)")
    np_.add_argument("--ttl", type=int, default=7)
    np_.add_argument("--duration", type=float, default=1.0,
                     help="seconds to serve before reporting and exiting")
    np_.add_argument("--connect", action="append", metavar="HOST:PORT",
                     default=None, help="peer to dial (repeatable)")
    np_.add_argument("--store", default=None,
                     help="comma-separated object keys this peer holds")
    np_.set_defaults(func=cmd_node_run)

    np_ = nsub.add_parser(
        "boot", help="boot N live peers into a seeded overlay and flood"
    )
    common(np_)
    np_.set_defaults(nodes=40)
    np_.add_argument("--ttl", type=int, default=6)
    np_.add_argument("--replication", type=float, default=0.1)
    np_.add_argument("--objects", type=int, default=10)
    np_.add_argument("--queries", type=int, default=20)
    np_.add_argument("--trace-dir", metavar="DIR", default=None,
                     help="write one peer-<id>.jsonl trace sink per peer "
                          "into DIR (merge with 'repro node trace DIR')")
    np_.add_argument("--telemetry-interval", type=float, default=0.0,
                     help="runtime-telemetry sampling period in seconds "
                          "(0 disables; samples event-loop lag and "
                          "per-peer gauges into node.runtime.*)")
    np_.set_defaults(func=cmd_node_boot)

    np_ = nsub.add_parser(
        "trace",
        help="merge per-peer trace sinks and reconstruct causal "
             "query trees",
    )
    np_.add_argument("inputs", nargs="+", metavar="PATH",
                     help="trace JSONL file(s) or directories of "
                          "peer-*.jsonl sinks")
    np_.add_argument("--export", metavar="PATH", default=None,
                     help="also write a Chrome/Perfetto trace "
                          "(one lane per peer, hop edges as flow events)")
    np_.add_argument("--require-complete", type=int, default=0,
                     metavar="N",
                     help="exit 1 unless at least N complete query trees "
                          "were reconstructed")
    np_.add_argument("--verbose", action="store_true",
                     help="print every hop edge of every tree")
    np_.set_defaults(func=cmd_node_trace)

    np_ = nsub.add_parser(
        "parity",
        help="replay one seeded scenario through sim and live; diff them",
    )
    np_.add_argument("--nodes", type=int, default=24)
    np_.add_argument("--seed", type=int, default=7)
    np_.add_argument("--ttl", type=int, default=6)
    np_.add_argument("--replication", type=float, default=0.1)
    np_.add_argument("--objects", type=int, default=8)
    np_.add_argument("--queries", type=int, default=12)
    np_.add_argument("--sim-out", metavar="PATH", default=None,
                     help="write the sim arm's metric snapshot")
    np_.add_argument("--live-out", metavar="PATH", default=None,
                     help="write the live arm's metric snapshot")
    np_.add_argument("--threshold", type=float, default=0.02,
                     help="relative divergence tolerated per metric")
    np_.add_argument("--fail-on-divergence", action="store_true",
                     help="exit 1 when any gated metric diverges")
    np_.set_defaults(func=cmd_node_parity)

    np_ = nsub.add_parser(
        "churn",
        help="replay a fault scenario against a running live overlay",
    )
    common(np_, topology=False)
    np_.set_defaults(nodes=32)
    np_.add_argument("--scenario", default="paper-live-failures",
                     help="builtin scenario name (see 'repro faults "
                          "list') or a JSON file path")
    np_.add_argument("--objects", type=int, default=12,
                     help="corpus size (distinct objects)")
    np_.add_argument("--k", type=int, default=3,
                     help="target replicas per object")
    np_.add_argument("--duration", type=float, default=150.0,
                     help="virtual horizon in scenario seconds")
    np_.add_argument("--time-scale", type=float, default=0.0,
                     help="wall seconds per virtual second between "
                          "events (0 = unpaced)")
    np_.add_argument("--heal-interval", type=float, default=10.0)
    np_.add_argument("--snapshot-interval", type=float, default=25.0,
                     help="durability sampling period (0 = final "
                          "census only)")
    np_.add_argument("--mean-offline", type=float, default=25.0,
                     help="mean exponential offline period before a "
                          "crashed peer rejoins")
    np_.add_argument("--no-heal", action="store_true",
                     help="disable the periodic healing sweep")
    np_.add_argument("--no-read-repair", action="store_true")
    np_.add_argument("--report-json", metavar="PATH", default=None,
                     help="write the replay + durability report as JSON")
    np_.set_defaults(func=cmd_node_churn)

    p = sub.add_parser(
        "content",
        help="content & replication plane (place / fetch / heal / report)",
    )
    csub = p.add_subparsers(dest="content_command", required=True)

    def content_args(cp, durability=True):
        common(cp, topology=False)
        cp.set_defaults(nodes=120)
        cp.add_argument("--objects", type=int, default=60,
                        help="corpus size (distinct objects)")
        cp.add_argument("--k", type=int, default=3,
                        help="target replicas per object")
        if durability:
            cp.add_argument("--duration", type=float, default=150.0)
            cp.add_argument(
                "--scenario", default="paper-live-failures",
                help="builtin scenario name, JSON file path, "
                     "'hub-failure' (2-wave 40%% top-degree crash), or "
                     "'none' for fault-free churn")
            cp.add_argument("--no-heal", action="store_true",
                            help="disable the background healing loop")
            cp.add_argument("--no-read-repair", action="store_true",
                            help="disable read-repair on fetch")
            cp.add_argument("--heal-interval", type=float, default=10.0)
            cp.add_argument("--fetch-probes", type=int, default=8,
                            help="fetch probes per snapshot (availability "
                                 "sampling)")

    cp = csub.add_parser(
        "place", help="preview a seeded placement (no churn)"
    )
    content_args(cp, durability=False)
    cp.set_defaults(seed=1234)
    cp.add_argument("--verbose", action="store_true",
                    help="print per-object holder lists")
    cp.add_argument("--manifest-json", metavar="PATH", default=None,
                    help="write the corpus manifests as JSON "
                         "(schemas/content_manifest.schema.json)")
    cp.set_defaults(func=cmd_content_place)

    cp = csub.add_parser(
        "fetch", help="run the durability sim, then issue fetches"
    )
    content_args(cp)
    cp.set_defaults(seed=1234)
    cp.add_argument("--queries", type=int, default=50,
                    help="end-of-run fetches to issue")
    cp.set_defaults(func=cmd_content_fetch)

    cp = csub.add_parser(
        "heal", help="run the durability sim and print the healing ledger"
    )
    content_args(cp)
    cp.set_defaults(seed=1234)
    cp.set_defaults(func=cmd_content_heal)

    cp = csub.add_parser(
        "report", help="per-snapshot durability table + final report"
    )
    content_args(cp)
    cp.set_defaults(seed=1234)
    cp.add_argument("--json", metavar="PATH", default=None,
                    help="also write the final report as JSON")
    cp.set_defaults(func=cmd_content_report)

    p = sub.add_parser("faults",
                       help="fault-injection scenarios (list / run)")
    fsub = p.add_subparsers(dest="faults_command", required=True)

    fp = fsub.add_parser("list", help="list built-in fault scenarios")
    fp.set_defaults(func=cmd_faults_list)

    fp = fsub.add_parser(
        "run", help="run a fault scenario over a churned Makalu overlay"
    )
    common(fp, topology=False)
    fp.add_argument("faults", metavar="SCENARIO",
                    help="builtin scenario name or JSON file path")
    churn_args(fp, faults_flag=False)
    fp.set_defaults(func=cmd_faults_run)

    from repro.obs.report import add_obs_subparsers

    add_obs_subparsers(sub)

    return parser


def _write_profile_json(profiler, path: str) -> None:
    import json

    doc = {
        "schema_version": 1,
        "report": profiler.report(),
        "timeline": profiler.timeline_report(),
        "timeline_dropped": profiler.timeline_dropped,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    metrics_json = getattr(args, "metrics_json", None)
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    profile_json = getattr(args, "profile_json", None)
    if not (metrics_json or trace_path or profile or profile_json):
        return args.func(args)

    # Fail before the run, not after it: all sinks are written at exit.
    for path in (metrics_json, trace_path, profile_json):
        parent = os.path.dirname(os.path.abspath(path)) if path else None
        if parent and not os.path.isdir(parent):
            print(f"error: cannot write {path}: "
                  f"directory {parent} does not exist", file=sys.stderr)
            return 2

    session = obs.configure(trace=trace_path or None,
                            profile=profile or bool(profile_json))
    try:
        rc = args.func(args)
    finally:
        # Flush artifacts even when the command raises: a crashed run
        # leaves partial-but-readable metrics, profile, and trace files
        # behind (disable() closes the JSONL sink, so ``repro obs
        # export-trace`` works on the truncated trace).
        obs.disable()
        if metrics_json:
            session.metrics.write_json(metrics_json)
            print(f"metrics snapshot written to {metrics_json}")
        if trace_path:
            print(f"trace written to {trace_path} "
                  f"({session.tracer.emitted} events)")
        if profile_json:
            _write_profile_json(session.profiler, profile_json)
            print(f"profile written to {profile_json}")
    if profile:
        print(session.profiler.format_report())
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
