"""Minimal deterministic discrete-event engine.

A binary-heap event queue with a strict (time, sequence) order: events at
equal times fire in scheduling order, so simulations are reproducible
run-to-run.  Callbacks receive the simulator, letting them schedule
follow-up events.

Dispatch is observable: each fired event's ``label`` reaches the active
:mod:`repro.obs` tracer (kind ``sim.event``) and is attached as a note to
any exception a callback raises, so a failing churn run reports *which*
event blew up, not just a bare traceback.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs import runtime as _obs

EventCallback = Callable[["Simulator"], Any]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    label: str = field(default="", compare=False)


class Simulator:
    """Heap-based event loop with virtual time."""

    def __init__(self):
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay, seq=next(self._seq), callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, label=label)

    def _dispatch(self, event: Event) -> None:
        """Fire one event: advance the clock, trace, run the callback."""
        self._now = event.time
        tracer = _obs.tracing_active()
        if tracer is not None:
            tracer.emit(
                "sim.event", t=event.time, event_seq=event.seq,
                label=event.label,
            )
        _obs.count("sim.events_dispatched")
        try:
            event.callback(self)
        except Exception as exc:
            note = (
                f"while dispatching event {event.label or '<unlabeled>'!r} "
                f"(t={event.time}, seq={event.seq})"
            )
            if hasattr(exc, "add_note"):  # Python 3.11+
                exc.add_note(note)
            else:  # pragma: no cover - 3.10 fallback
                exc.args = exc.args + (note,)
            raise
        self._processed += 1

    def step(self) -> Optional[Event]:
        """Fire the single next event; returns it, or None if queue empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._dispatch(event)
        return event

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the queue; returns the number of events processed.

        ``until`` stops the clock at that virtual time (events beyond it
        stay queued); ``max_events`` bounds work for safety.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            self._dispatch(heapq.heappop(self._queue))
            processed += 1
        else:
            if until is not None:
                self._now = until
        return processed
