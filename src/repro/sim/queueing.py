"""Message-level flooding with per-node queueing delays.

The synchronous flood kernels count messages; this simulator models
*time*: messages travel with their link's latency, nodes process arrivals
FIFO at ``service_time`` seconds per message — duplicates included, which
is the congestion mechanism — and the first *processed* copy is forwarded
onward.  Note the semantic difference from the hop-synchronous kernels: a
node forwards its first copy by arrival time, which on heterogeneous-
latency substrates is not always the fewest-hop copy (exactly as in the
real protocol); on unit-latency overlays the two models coincide.

What a *single-query* run (:func:`queued_flood`) shows is duplicate-burst
queueing: every reached node receives ~degree copies in a short window, so
per-query queueing delay grows with the overlay's own density.  The
Gnutella hub pathology the paper's Section 6 cites ("Gnutella's queuing
time was significantly slower" [Qiao & Bustamante]) is instead a
*cross-query load-concentration* effect: under a stream of queries, a
power-law hub carries a far larger share of total traffic than any
capacity-bounded Makalu node.  :func:`simulate_workload` measures exactly
that: it drives a whole :class:`~repro.trace.workload.QueryWorkload`
(Poisson arrivals, Zipf objects) through **shared** per-node FIFO queues
concurrently, so queries contend for hub service capacity and the
end-to-end response-time distribution — p50/p90/p99/p999 via
:mod:`repro.obs.quantiles` — exposes the hub-queueing tail.
:func:`saturation_sweep` scales the arrival rate until the overlay
saturates, locating the knee of the latency curve.

Events are plain heapq entries, so a 10k-node flood simulates in
milliseconds and a full heavy-traffic workload in seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph
from repro.trace.workload import QueryWorkload
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class QueuedFloodResult:
    """Timing of one queued flood.

    ``discovery_time[v]`` is when node ``v`` finished *processing* its
    first copy of the query (inf if never reached); queueing delay is
    accounted inside it.  ``first_result_time`` is the earliest discovery
    time over replica holders.
    """

    source: int
    ttl: int
    messages: int
    discovery_time: np.ndarray
    first_result_time: float
    max_queue_delay: float
    busiest_node: int

    @property
    def success(self) -> bool:
        """Whether a replica holder processed the query."""
        return np.isfinite(self.first_result_time)

    @property
    def nodes_reached(self) -> int:
        """Nodes that processed the query."""
        return int(np.isfinite(self.discovery_time).sum())


def queued_flood(
    graph: OverlayGraph,
    source: int,
    ttl: int,
    replica_mask: Optional[np.ndarray] = None,
    service_time: Union[float, np.ndarray] = 1.0,
) -> QueuedFloodResult:
    """Simulate one flood with link latencies and per-node service times.

    Parameters
    ----------
    service_time:
        Seconds a node spends handling one incoming message (scalar, or a
        per-node array — e.g. lower for high-capacity peers).  Duplicates
        consume service time too; that is the congestion mechanism.
    """
    check_node_id("source", source, graph.n_nodes)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    if replica_mask is not None and replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    service = np.broadcast_to(
        np.asarray(service_time, dtype=np.float64), (graph.n_nodes,)
    )
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")

    indptr, indices, latency = graph.indptr, graph.indices, graph.latency
    seen = np.zeros(graph.n_nodes, dtype=bool)
    busy_until = np.zeros(graph.n_nodes)
    discovery = np.full(graph.n_nodes, np.inf)
    discovery[source] = 0.0
    seen[source] = True
    max_queue_delay = 0.0
    busiest = source
    messages = 0

    # Event: (arrival_time, seq, node, sender, remaining_ttl).
    queue: list = []
    seq = 0
    if ttl >= 1:
        for i in range(indptr[source], indptr[source + 1]):
            heapq.heappush(
                queue, (float(latency[i]), seq, int(indices[i]), source, ttl - 1)
            )
            seq += 1
            messages += 1

    while queue:
        arrival, _, node, sender, remaining = heapq.heappop(queue)
        start = max(arrival, busy_until[node])
        delay = start - arrival
        if delay > max_queue_delay:
            max_queue_delay = delay
            busiest = node
        done = start + service[node]
        busy_until[node] = done
        if seen[node]:
            continue  # duplicate: queue time consumed, then dropped
        seen[node] = True
        discovery[node] = done
        if remaining > 0:
            for i in range(indptr[node], indptr[node + 1]):
                nbr = int(indices[i])
                if nbr == sender:
                    continue
                heapq.heappush(
                    queue, (done + float(latency[i]), seq, nbr, node, remaining - 1)
                )
                seq += 1
                messages += 1

    if replica_mask is not None:
        holder_times = discovery[replica_mask]
        finite = holder_times[np.isfinite(holder_times)]
        first = float(finite.min()) if finite.size else float("inf")
    else:
        first = float("inf")
    return QueuedFloodResult(
        source=source,
        ttl=ttl,
        messages=messages,
        discovery_time=discovery,
        first_result_time=first,
        max_queue_delay=float(max_queue_delay),
        busiest_node=int(busiest),
    )


# ----------------------------------------------------------------------
# Continuous-load serving: a whole workload through shared queues
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadRunResult:
    """Outcome of one continuous-load run (:func:`simulate_workload`).

    All times are virtual seconds.  ``response_time[q]`` is end-to-end:
    from query ``q``'s arrival in the workload stream to the moment the
    first replica holder finished *processing* its copy (0.0 when the
    source held a replica itself, inf when the query never resolved).
    ``utilization[v]`` is node ``v``'s busy fraction over the run's
    makespan — the per-node load picture hub hot-spots show up in.
    """

    ttl: int
    sources: np.ndarray
    objects: np.ndarray
    response_time: np.ndarray
    messages_per_query: np.ndarray
    utilization: np.ndarray
    peak_queue_delay: np.ndarray
    makespan: float

    @property
    def n_queries(self) -> int:
        """Queries driven through the overlay."""
        return self.response_time.size

    @property
    def messages(self) -> int:
        """Total messages across all queries."""
        return int(self.messages_per_query.sum())

    @property
    def resolved(self) -> np.ndarray:
        """Per-query success mask."""
        return np.isfinite(self.response_time)

    @property
    def success_rate(self) -> float:
        """Fraction of queries that found a replica."""
        return float(self.resolved.mean()) if self.n_queries else 0.0

    def response_quantile(self, q: float) -> float:
        """Exact response-time quantile over resolved queries (nan if none)."""
        finite = self.response_time[self.resolved]
        return float(np.quantile(finite, q)) if finite.size else float("nan")

    def hot_nodes(self, k: int = 10) -> np.ndarray:
        """The ``k`` highest-utilization node ids, busiest first."""
        k = min(max(0, k), self.utilization.size)
        order = np.argsort(-self.utilization, kind="stable")
        return order[:k]

    def is_saturated(self, util_threshold: float = 0.95) -> bool:
        """Whether some node was effectively never idle (a saturated hub)."""
        return bool(self.utilization.max(initial=0.0) >= util_threshold)


def draw_workload_sources(
    n_nodes: int, n_queries: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniform-random query source nodes (one RNG stream, reproducible)."""
    rng = as_generator(seed)
    return rng.integers(0, n_nodes, size=n_queries, dtype=np.int64)


def simulate_workload(
    graph: OverlayGraph,
    workload: QueryWorkload,
    placement: Placement,
    ttl: int,
    sources: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    service_time: Union[float, np.ndarray] = 1.0,
    latency_scale: float = 1.0,
    sample_interval: Optional[float] = None,
    metric_prefix: str = "queue",
    top_k: int = 10,
) -> WorkloadRunResult:
    """Serve a whole query workload through shared per-node FIFO queues.

    Every query floods exactly as in :func:`queued_flood`, but all
    queries share one event heap and one ``busy_until`` per node, so
    concurrent floods queue behind each other — the cross-query
    load-concentration congestion a single-flood model cannot express.

    Parameters
    ----------
    workload:
        Arrival times and object indices (see
        :func:`repro.trace.workload.generate_workload`).  Object indices
        must be valid for ``placement``.
    sources, seed:
        Per-query source nodes; drawn uniformly from ``seed`` when not
        given (the draw happens before the event loop, so observability
        cannot perturb it).
    service_time:
        Seconds per message at each node (scalar or per-node array).
        Duplicates consume service time too.
    latency_scale:
        Seconds per link-latency unit.  Overlay latencies are in the
        network model's native units (~milliseconds); workload arrivals
        are in seconds — 0.001 reconciles them.
    sample_interval:
        Period of the utilization/queue-depth time series recorded into
        an active obs session (defaults to 1/50th of the workload
        duration; ignored without a session).
    metric_prefix:
        Name prefix of every metric this run records (``queue`` by
        default; benchmarks use e.g. ``capacity.makalu`` to hold two
        arms apart in one snapshot).
    top_k:
        How many of the busiest nodes get per-node utilization gauges
        (``<prefix>.node_util.<id>``, the ``repro obs top`` surface).

    Observability (all under an active :mod:`repro.obs` session, all
    pure observation — the run is bit-identical with obs on or off):

    * quantiles ``<prefix>.response_s`` (per resolved query);
    * counters ``<prefix>.queries`` / ``.messages`` / ``.unresolved``;
    * gauges ``<prefix>.success_rate``, ``.util_max``, ``.util_mean``,
      ``.makespan_s``, ``.saturated``, ``.node_util.<id>``;
    * time series ``<prefix>.inflight`` and ``<prefix>.busy_nodes``
      sampled every ``sample_interval``;
    * trace events ``queue.enqueue`` / ``queue.service`` /
      ``queue.forward`` / ``queue.hit``, each carrying a ``query_id``
      correlation field and virtual time ``t`` (one Chrome-trace lane
      per query via ``repro obs export-trace``).
    """
    n_nodes = graph.n_nodes
    n_queries = workload.n_queries
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    objects = np.asarray(workload.objects, dtype=np.int64)
    if objects.size and (objects.min() < 0
                         or objects.max() >= placement.n_objects):
        raise ValueError("workload objects out of range for the placement")
    if placement.n_nodes != n_nodes:
        raise ValueError("placement and graph disagree on n_nodes")
    if sources is None:
        sources = draw_workload_sources(n_nodes, n_queries, seed=seed)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.shape != (n_queries,):
            raise ValueError("sources must have one entry per query")
        if sources.size and (sources.min() < 0 or sources.max() >= n_nodes):
            raise ValueError("source node id out of range")
    service = np.broadcast_to(
        np.asarray(service_time, dtype=np.float64), (n_nodes,)
    )
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")
    arrivals = np.asarray(workload.times, dtype=np.float64)

    # Per-object holder masks, built once (objects repeat under Zipf).
    holder_masks: dict = {}

    def holders(obj: int) -> np.ndarray:
        mask = holder_masks.get(obj)
        if mask is None:
            mask = placement.holder_mask(obj)
            holder_masks[obj] = mask
        return mask

    if latency_scale <= 0:
        raise ValueError(f"latency_scale must be positive, got {latency_scale}")
    indptr, indices = graph.indptr, graph.indices
    latency = np.asarray(graph.latency, dtype=np.float64) * latency_scale
    seen = np.zeros((n_queries, n_nodes), dtype=bool)
    busy_until = np.zeros(n_nodes)
    busy_time = np.zeros(n_nodes)
    peak_delay = np.zeros(n_nodes)
    response = np.full(n_queries, np.inf)
    messages_per_query = np.zeros(n_queries, dtype=np.int64)

    tracer = obs.tracing_active()
    session = obs.active()
    sample_every = None
    if session is not None:
        sample_every = sample_interval
        if sample_every is None:
            duration = float(workload.duration)
            sample_every = duration / 50.0 if duration > 0 else None
        if sample_every is not None and sample_every <= 0:
            raise ValueError("sample_interval must be positive")
    next_sample = sample_every if sample_every is not None else np.inf
    inflight = 0

    # Heap entry: (time, seq, query_id, node, sender, remaining_ttl).
    # sender == -1 marks the query-injection event at its source.
    queue: list = []
    seq = 0
    for q in range(n_queries):
        heapq.heappush(
            queue, (float(arrivals[q]), seq, q, int(sources[q]), -1, ttl)
        )
        seq += 1

    makespan = float(arrivals[-1]) if n_queries else 0.0

    def record_samples(now: float) -> None:
        nonlocal next_sample
        while next_sample <= now:
            obs.record(f"{metric_prefix}.inflight", next_sample, inflight)
            obs.record(
                f"{metric_prefix}.busy_nodes", next_sample,
                int((busy_until > next_sample).sum()),
            )
            next_sample += sample_every

    while queue:
        when, _, q, node, sender, remaining = heapq.heappop(queue)
        if sample_every is not None:
            record_samples(when)

        if sender < 0:
            # Query injection: the source resolves locally for free and
            # fans out without consuming its own service time (matching
            # :func:`queued_flood`'s source semantics).
            seen[q, node] = True
            if holders(int(objects[q]))[node] and response[q] == np.inf:
                response[q] = 0.0
                if tracer is not None:
                    tracer.emit("queue.hit", t=when, query_id=q, node=node,
                                response_s=0.0)
            if remaining >= 1:
                fanout = 0
                for i in range(indptr[node], indptr[node + 1]):
                    heapq.heappush(
                        queue,
                        (when + float(latency[i]), seq, q,
                         int(indices[i]), node, remaining - 1),
                    )
                    seq += 1
                    fanout += 1
                messages_per_query[q] += fanout
                inflight += fanout
                if tracer is not None and fanout:
                    tracer.emit("queue.forward", t=when, query_id=q,
                                node=node, sent=fanout)
            if when > makespan:
                makespan = when
            continue

        # Message copy arrives: FIFO service behind whatever the node is
        # already processing — for *any* query; this coupling is the point.
        start = max(when, busy_until[node])
        delay = start - when
        if delay > peak_delay[node]:
            peak_delay[node] = delay
        done = start + service[node]
        busy_until[node] = done
        busy_time[node] += service[node]
        inflight -= 1
        if done > makespan:
            makespan = done
        if tracer is not None:
            tracer.emit("queue.service", t=when, query_id=q, node=node,
                        start=start, done=done,
                        dup=bool(seen[q, node]))
        if seen[q, node]:
            continue  # duplicate: queue + service time consumed, dropped
        seen[q, node] = True
        if holders(int(objects[q]))[node] and response[q] == np.inf:
            response[q] = done - float(arrivals[q])
            if tracer is not None:
                tracer.emit("queue.hit", t=done, query_id=q, node=node,
                            response_s=float(response[q]))
        if remaining > 0:
            fanout = 0
            for i in range(indptr[node], indptr[node + 1]):
                nbr = int(indices[i])
                if nbr == sender:
                    continue
                heapq.heappush(
                    queue,
                    (done + float(latency[i]), seq, q, nbr, node,
                     remaining - 1),
                )
                seq += 1
                fanout += 1
            messages_per_query[q] += fanout
            inflight += fanout
            if tracer is not None and fanout:
                tracer.emit("queue.forward", t=done, query_id=q, node=node,
                            sent=fanout)

    if sample_every is not None:
        record_samples(makespan)

    utilization = busy_time / makespan if makespan > 0 else busy_time
    result = WorkloadRunResult(
        ttl=ttl,
        sources=sources,
        objects=objects,
        response_time=response,
        messages_per_query=messages_per_query,
        utilization=utilization,
        peak_queue_delay=peak_delay,
        makespan=makespan,
    )

    if session is not None:
        obs.count(f"{metric_prefix}.queries", n_queries)
        obs.count(f"{metric_prefix}.messages", result.messages)
        obs.count(f"{metric_prefix}.unresolved",
                  int(n_queries - result.resolved.sum()))
        for rt in response[result.resolved]:
            obs.quantile(f"{metric_prefix}.response_s", float(rt))
        obs.gauge(f"{metric_prefix}.success_rate", result.success_rate)
        obs.gauge(f"{metric_prefix}.util_max",
                  float(utilization.max(initial=0.0)))
        obs.gauge(f"{metric_prefix}.util_mean",
                  float(utilization.mean()) if n_nodes else 0.0)
        obs.gauge(f"{metric_prefix}.makespan_s", makespan)
        obs.gauge(f"{metric_prefix}.saturated",
                  float(result.is_saturated()))
        for v in result.hot_nodes(top_k):
            obs.gauge(f"{metric_prefix}.node_util.{int(v)}",
                      float(utilization[v]))
    return result


@dataclass(frozen=True)
class SaturationSweep:
    """Latency-vs-load curve of :func:`saturation_sweep`.

    ``multipliers[i]`` scaled the workload's arrival rate; ``results[i]``
    is the full run at that rate.  ``saturation_multiplier`` is the first
    rate multiplier at which some node's utilization crossed the
    threshold (nan if the sweep never saturated) — the overlay's
    capacity knee.
    """

    multipliers: tuple
    results: tuple
    util_threshold: float

    @property
    def p99_curve(self) -> list:
        """p99 response time at each rate multiplier."""
        return [r.response_quantile(0.99) for r in self.results]

    @property
    def saturation_multiplier(self) -> float:
        """First multiplier whose run saturated (nan if none did)."""
        for m, r in zip(self.multipliers, self.results):
            if r.is_saturated(self.util_threshold):
                return float(m)
        return float("nan")

    @property
    def saturation_index(self) -> Optional[int]:
        """Index of the saturating run, or None."""
        for i, r in enumerate(self.results):
            if r.is_saturated(self.util_threshold):
                return i
        return None


def scale_workload(workload: QueryWorkload, multiplier: float) -> QueryWorkload:
    """The same query stream at ``multiplier``x the arrival rate.

    Arrival times compress by the multiplier; objects (and any externally
    drawn sources) are untouched, so runs at different rates serve the
    *identical* queries under different load — the controlled comparison
    a saturation sweep needs.
    """
    if multiplier <= 0:
        raise ValueError(f"multiplier must be positive, got {multiplier}")
    return QueryWorkload(
        times=np.asarray(workload.times, dtype=np.float64) / multiplier,
        objects=workload.objects,
        n_objects=workload.n_objects,
    )


def saturation_sweep(
    graph: OverlayGraph,
    workload: QueryWorkload,
    placement: Placement,
    ttl: int,
    multipliers: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    sources: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    service_time: Union[float, np.ndarray] = 1.0,
    latency_scale: float = 1.0,
    util_threshold: float = 0.95,
    metric_prefix: Optional[str] = None,
    top_k: int = 10,
) -> SaturationSweep:
    """Find the overlay's saturation point by scaling the arrival rate.

    Runs :func:`simulate_workload` once per multiplier with the same
    queries and sources (drawn once from ``seed`` when not given), so the
    only variable is offered load.  With ``metric_prefix`` set, each run
    records under ``<prefix>.x<multiplier>.*`` and the sweep's headline
    gauges land under ``<prefix>.saturation_multiplier`` /
    ``<prefix>.p99_at_saturation_s``.
    """
    if not multipliers:
        raise ValueError("need at least one rate multiplier")
    if sources is None:
        sources = draw_workload_sources(
            graph.n_nodes, workload.n_queries, seed=seed
        )
    results = []
    for m in multipliers:
        prefix = (f"{metric_prefix}.x{format(float(m), 'g')}"
                  if metric_prefix else "queue.sweep")
        results.append(simulate_workload(
            graph, scale_workload(workload, float(m)), placement, ttl,
            sources=sources, service_time=service_time,
            latency_scale=latency_scale, metric_prefix=prefix, top_k=top_k,
        ))
    sweep = SaturationSweep(
        multipliers=tuple(float(m) for m in multipliers),
        results=tuple(results),
        util_threshold=util_threshold,
    )
    if metric_prefix and obs.is_enabled():
        idx = sweep.saturation_index
        # A sweep that never saturated records nothing here: NaN gauges
        # poison JSON artifacts and diff output, and "absent" is exactly
        # what an SLO should see when the knee was not found.
        if idx is not None:
            obs.gauge(f"{metric_prefix}.saturation_multiplier",
                      sweep.saturation_multiplier)
            obs.gauge(f"{metric_prefix}.p99_at_saturation_s",
                      sweep.results[idx].response_quantile(0.99))
    return sweep
