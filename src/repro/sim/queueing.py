"""Message-level flooding with per-node queueing delays.

The synchronous flood kernels count messages; this simulator models
*time*: messages travel with their link's latency, nodes process arrivals
FIFO at ``service_time`` seconds per message — duplicates included, which
is the congestion mechanism — and the first *processed* copy is forwarded
onward.  Note the semantic difference from the hop-synchronous kernels: a
node forwards its first copy by arrival time, which on heterogeneous-
latency substrates is not always the fewest-hop copy (exactly as in the
real protocol); on unit-latency overlays the two models coincide.

What a *single-query* run shows is duplicate-burst queueing: every reached
node receives ~degree copies in a short window, so per-query queueing
delay grows with the overlay's own density.  The Gnutella hub pathology
the paper's Section 6 cites ("Gnutella's queuing time was significantly
slower" [Qiao & Bustamante]) is instead a *cross-query load-concentration*
effect: under a stream of queries, a power-law hub carries a far larger
share of total traffic than any capacity-bounded Makalu node — measure it
with :func:`repro.search.flooding.flood_node_load` averaged over sources
(see the queueing tests), or by scaling ``service_time`` by the per-node
background utilization it implies.

Events are plain heapq entries, so a 10k-node flood simulates in
milliseconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.topology.graph import OverlayGraph
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class QueuedFloodResult:
    """Timing of one queued flood.

    ``discovery_time[v]`` is when node ``v`` finished *processing* its
    first copy of the query (inf if never reached); queueing delay is
    accounted inside it.  ``first_result_time`` is the earliest discovery
    time over replica holders.
    """

    source: int
    ttl: int
    messages: int
    discovery_time: np.ndarray
    first_result_time: float
    max_queue_delay: float
    busiest_node: int

    @property
    def success(self) -> bool:
        """Whether a replica holder processed the query."""
        return np.isfinite(self.first_result_time)

    @property
    def nodes_reached(self) -> int:
        """Nodes that processed the query."""
        return int(np.isfinite(self.discovery_time).sum())


def queued_flood(
    graph: OverlayGraph,
    source: int,
    ttl: int,
    replica_mask: Optional[np.ndarray] = None,
    service_time: Union[float, np.ndarray] = 1.0,
) -> QueuedFloodResult:
    """Simulate one flood with link latencies and per-node service times.

    Parameters
    ----------
    service_time:
        Seconds a node spends handling one incoming message (scalar, or a
        per-node array — e.g. lower for high-capacity peers).  Duplicates
        consume service time too; that is the congestion mechanism.
    """
    check_node_id("source", source, graph.n_nodes)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    if replica_mask is not None and replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    service = np.broadcast_to(
        np.asarray(service_time, dtype=np.float64), (graph.n_nodes,)
    )
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")

    indptr, indices, latency = graph.indptr, graph.indices, graph.latency
    seen = np.zeros(graph.n_nodes, dtype=bool)
    busy_until = np.zeros(graph.n_nodes)
    discovery = np.full(graph.n_nodes, np.inf)
    discovery[source] = 0.0
    seen[source] = True
    max_queue_delay = 0.0
    busiest = source
    messages = 0

    # Event: (arrival_time, seq, node, sender, remaining_ttl).
    queue: list = []
    seq = 0
    if ttl >= 1:
        for i in range(indptr[source], indptr[source + 1]):
            heapq.heappush(
                queue, (float(latency[i]), seq, int(indices[i]), source, ttl - 1)
            )
            seq += 1
            messages += 1

    while queue:
        arrival, _, node, sender, remaining = heapq.heappop(queue)
        start = max(arrival, busy_until[node])
        delay = start - arrival
        if delay > max_queue_delay:
            max_queue_delay = delay
            busiest = node
        done = start + service[node]
        busy_until[node] = done
        if seen[node]:
            continue  # duplicate: queue time consumed, then dropped
        seen[node] = True
        discovery[node] = done
        if remaining > 0:
            for i in range(indptr[node], indptr[node + 1]):
                nbr = int(indices[i])
                if nbr == sender:
                    continue
                heapq.heappush(
                    queue, (done + float(latency[i]), seq, nbr, node, remaining - 1)
                )
                seq += 1
                messages += 1

    if replica_mask is not None:
        holder_times = discovery[replica_mask]
        finite = holder_times[np.isfinite(holder_times)]
        first = float(finite.min()) if finite.size else float("inf")
    else:
        first = float("inf")
    return QueuedFloodResult(
        source=source,
        ttl=ttl,
        messages=messages,
        discovery_time=discovery,
        first_result_time=first,
        max_queue_delay=float(max_queue_delay),
        busiest_node=int(busiest),
    )
