"""Makalu under node churn.

The paper's fault-tolerance analysis freezes the overlay immediately after
failures; real P2P populations churn continuously.  This simulation drives
a live :class:`~repro.core.makalu.MakaluBuilder` through exponential node
sessions: an online node departs after an exponential session length (its
edges vanish instantly; bereaved survivors re-acquire neighbors through the
normal protocol) and rejoins after an exponential offline period.  Periodic
snapshots record connectivity so the overlay's self-healing is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.content.plane import ContentPlane
    from repro.faults.link import LinkFaults
    from repro.faults.scenario import FaultScenario

from repro.core.makalu import MakaluBuilder, MakaluConfig
from repro.core.maintenance import (
    RecoveryPolicy,
    recovery_attempt,
    repair_after_failure,
)
from repro.netmodel.base import NetworkModel
from repro.obs import runtime as _obs
from repro.obs.health import HealthConfig, HealthSample, HealthSampler
from repro.sim.engine import Simulator
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ChurnConfig:
    """Session dynamics.

    Times are abstract; only the ratio of session to offline duration
    matters (it sets the steady-state online fraction
    ``session / (session + offline)``).
    """

    mean_session: float = 100.0
    mean_offline: float = 25.0
    snapshot_interval: float = 20.0
    #: Flooding probes run at each snapshot (0 disables search probing).
    probe_queries: int = 0
    probe_ttl: int = 4
    #: Replicas per probe object, placed on random online nodes.
    probe_replicas: int = 5
    #: Structural-health sampling period (0 disables the
    #: :class:`~repro.obs.health.HealthSampler` hook entirely; the churn
    #: trajectory is bit-identical either way).
    health_interval: float = 0.0
    #: BFS/expansion source sample size per health sample.
    health_sources: int = 8
    #: Notional attenuated-filter depth for the staleness estimate.
    health_filter_depth: int = 3

    def __post_init__(self):
        check_positive("mean_session", self.mean_session)
        check_positive("mean_offline", self.mean_offline)
        check_positive("snapshot_interval", self.snapshot_interval)
        if self.probe_queries < 0:
            raise ValueError("probe_queries must be >= 0")
        if self.probe_ttl < 0:
            raise ValueError("probe_ttl must be >= 0")
        if self.probe_replicas < 1:
            raise ValueError("probe_replicas must be >= 1")
        if self.health_interval < 0:
            raise ValueError("health_interval must be >= 0")
        if self.health_sources < 1:
            raise ValueError("health_sources must be >= 1")
        if self.health_filter_depth < 1:
            raise ValueError("health_filter_depth must be >= 1")

    @property
    def online_fraction(self) -> float:
        """Expected steady-state fraction of nodes online."""
        return self.mean_session / (self.mean_session + self.mean_offline)


@dataclass(frozen=True)
class ChurnSnapshot:
    """Connectivity (and optionally search health) of the online overlay.

    ``search_success`` is NaN unless the simulation was configured with
    ``probe_queries > 0``; probes flood for freshly placed objects among
    the online nodes, so the figure is end-to-end search availability
    under churn, not just graph connectivity.
    """

    time: float
    n_online: int
    n_components: int
    giant_fraction: float
    mean_degree: float
    search_success: float = float("nan")


@dataclass
class ChurnSimulation:
    """Drive a Makalu overlay through join/leave churn.

    Parameters mirror :class:`MakaluBuilder`; the initial overlay is built
    with every node online, then churn begins.
    """

    model: Optional[NetworkModel] = None
    n_nodes: Optional[int] = None
    makalu_config: Optional[MakaluConfig] = None
    churn_config: ChurnConfig = field(default_factory=ChurnConfig)
    use_host_caches: bool = False
    seed: SeedLike = None
    #: Optional :class:`~repro.faults.scenario.FaultScenario` injected live
    #: into the run (crashes, partitions, loss windows, latency spikes,
    #: stale views).  ``None`` reproduces the plain churn trajectory.
    faults: Optional["FaultScenario"] = None
    #: Retry/timeout discipline for fault recovery.  ``None`` keeps the
    #: legacy immediate-repair behaviour (and the bit-exact no-fault
    #: trajectory); a policy routes bereaved nodes through scheduled
    #: backoff attempts instead.
    recovery: Optional[RecoveryPolicy] = None
    #: Optional :class:`~repro.content.plane.ContentPlane`: places real
    #: replicated objects over the overlay, wipes them on crashes, heals
    #: under churn.  Repair/heal target selection is RNG-free and probes
    #: draw from a dedicated child stream, so attaching a plane keeps the
    #: churn trajectory bit-identical to a content-free run.
    content: Optional["ContentPlane"] = None

    def __post_init__(self):
        self.rng = as_generator(self.seed)
        # Probes draw from a dedicated child stream, spawned (not drawn)
        # from the seed so the spawn itself consumes nothing: the churn
        # trajectory driven by ``self.rng`` is bit-identical whether
        # ``probe_queries`` is 0 or 1000, and snapshots stay comparable
        # across probe settings.
        self._probe_rng = spawn_generators(self.rng, 1)[0]
        # Health sampling gets the next child stream for the same reason:
        # enabling --health-interval cannot perturb the churn trajectory.
        # Spawned unconditionally so the probe child's identity is stable
        # regardless of the health setting.
        self._health_rng = spawn_generators(self.rng, 1)[0]
        # Fault injection and recovery draw from the third child stream —
        # again spawned unconditionally, so attaching a scenario never
        # perturbs the probe or health streams (and a no-fault run is
        # bit-identical to one built before faults existed).
        self._fault_rng = spawn_generators(self.rng, 1)[0]
        # Content-plane fetch probes get the fourth child stream, spawned
        # unconditionally so earlier children keep their identities and a
        # run with a content plane attached replays the exact churn/fault
        # trajectory of one without.
        self._content_rng = spawn_generators(self.rng, 1)[0]
        membership = None
        if self.use_host_caches:
            from repro.core.membership import MembershipService

            n = self.model.n_nodes if self.model is not None else self.n_nodes
            membership = MembershipService(n, seed=self.rng)
        self.builder = MakaluBuilder(
            model=self.model,
            n_nodes=self.n_nodes,
            config=self.makalu_config,
            membership=membership,
            seed=self.rng,
        )
        self.online = np.ones(self.builder.n_nodes, dtype=bool)
        # Rejoining nodes bootstrap from their own (possibly stale) caches;
        # the builder consults this live-node mask when probing entries.
        self.builder.alive_mask = self.online
        # Per-node session epoch: bumped on every online/offline transition.
        # Scheduled depart/rejoin/recovery events capture the epoch at
        # scheduling time and no-op on mismatch, so an injected crash
        # invalidates the victim's pending churn events without touching
        # the event queue (or consuming any RNG).
        self._epoch = np.zeros(self.builder.n_nodes, dtype=np.int64)
        #: Message-level fault environment applied to probe searches; the
        #: fault injector swaps it as loss windows open and close.
        self.active_faults: Optional["LinkFaults"] = None
        # Monotone per-probe query key: loss decisions are counter-based
        # over (seed, key, hop, edge), so keys must never repeat.
        self._probe_key = 0
        self.injector = None
        self.snapshots: list[ChurnSnapshot] = []
        cfg = self.churn_config
        self.health_sampler: Optional[HealthSampler] = None
        if cfg.health_interval > 0:
            self.health_sampler = HealthSampler(
                HealthConfig(
                    interval=cfg.health_interval,
                    n_sources=cfg.health_sources,
                    filter_depth=cfg.health_filter_depth,
                ),
                rng=self._health_rng,
            )
        self._sim = Simulator()

    @property
    def health_samples(self) -> list[HealthSample]:
        """Health rows collected so far (empty when sampling is disabled)."""
        return self.health_sampler.samples if self.health_sampler else []

    def run(self, duration: float) -> list[ChurnSnapshot]:
        """Build the initial overlay, churn for ``duration``, return snapshots."""
        check_positive("duration", duration)
        with _obs.span("churn.initial_build"):
            self.builder.build()
        cfg = self.churn_config
        for node in range(self.builder.n_nodes):
            self._schedule_departure(node)
        self._sim.schedule(cfg.snapshot_interval, self._snapshot, label="snapshot")
        if self.health_sampler is not None:
            # Routing filters are (notionally) built on the post-build
            # overlay; staleness is measured against this reference.
            self.health_sampler.set_reference(self.builder.adj.freeze())
            self._sim.schedule(
                cfg.health_interval, self._health_sample, label="health"
            )
        if self.faults is not None:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(self)
            self.injector.schedule()
        if self.content is not None:
            with _obs.span("content.place"):
                self.content.start(self)
        self._sim.run(until=duration)
        return self.snapshots

    # ------------------------------------------------------------------

    def _schedule_departure(self, node: int) -> None:
        delay = float(self.rng.exponential(self.churn_config.mean_session))
        epoch = int(self._epoch[node])
        self._sim.schedule(
            delay, lambda sim, n=node, e=epoch: self._depart(n, e),
            label="depart",
        )

    def _schedule_rejoin(self, node: int, rng=None) -> None:
        rng = self.rng if rng is None else rng
        delay = float(rng.exponential(self.churn_config.mean_offline))
        epoch = int(self._epoch[node])
        self._sim.schedule(
            delay, lambda sim, n=node, e=epoch: self._rejoin(n, e),
            label="rejoin",
        )

    def _depart(self, node: int, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch[node]:
            return  # superseded by an injected crash or earlier transition
        if not self.online[node]:  # pragma: no cover - defensive
            return
        self.online[node] = False
        self._epoch[node] += 1
        _obs.count("churn.departures")
        _obs.event("churn.depart", t=self._sim.now, node=node)
        with _obs.span("churn.repair"):
            survivors = repair_after_failure(
                self.builder, [node], rejoin=self.recovery is None,
                max_passes=1,
            )
        if self.recovery is not None:
            self._schedule_recovery(survivors)
        self._schedule_rejoin(node)

    def _rejoin(self, node: int, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch[node]:
            return
        if self.online[node]:  # pragma: no cover - defensive
            return
        self.online[node] = True
        self._epoch[node] += 1
        _obs.count("churn.rejoins")
        _obs.event("churn.rejoin", t=self._sim.now, node=node)
        with _obs.span("churn.join"):
            self.builder.join(node)
        if self.content is not None:
            # Rebalance on join: a post-crash rejoiner gets its placed
            # keys pushed back (RNG-free, so the churn trajectory is
            # unchanged with or without a content plane attached).
            self.content.on_join(node)
        self._schedule_departure(node)

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.injector)
    # ------------------------------------------------------------------

    def crash_nodes(self, victims: Iterable[int], rejoin: bool = True) -> np.ndarray:
        """Fail ``victims`` simultaneously (a correlated crash).

        Unlike churn departures, victims drop as one batch — survivors see
        the full damage at once, which is the regime the paper's static
        analysis studies.  Returns the bereaved survivor ids.  With
        ``rejoin``, victims re-enter after exponential offline periods
        drawn from the fault stream.
        """
        victims = [int(v) for v in victims if self.online[int(v)]]
        if not victims:
            return np.empty(0, dtype=np.int64)
        for v in victims:
            self.online[v] = False
            self._epoch[v] += 1
        if self.content is not None:
            # A crash is disk loss: victims' replicas are gone, unlike a
            # churn departure where the node returns with its data.
            self.content.on_crash(victims)
        _obs.count("faults.crashes")
        _obs.count("faults.crash_victims", len(victims))
        _obs.event(
            "faults.crash", t=self._sim.now, victims=len(victims),
            rejoin=rejoin,
        )
        with _obs.span("faults.crash_repair"):
            survivors = repair_after_failure(
                self.builder, victims, rejoin=False
            )
        self.repair_or_recover(survivors)
        if rejoin:
            for v in victims:
                self._schedule_rejoin(v, rng=self._fault_rng)
        return survivors

    def rejoin_nodes(self, nodes: Iterable[int]) -> None:
        """Bring offline nodes back right now (already-online ones no-op).

        The immediate counterpart of the scheduled rejoin path — same
        epoch bump, overlay join, and content ``on_join`` rebalance —
        used by drivers that replay an explicit churn shape (e.g. the
        live-parity benchmarks) instead of drawing offline periods.
        """
        for v in nodes:
            v = int(v)
            if not self.online[v]:
                self._rejoin(v)

    def repair_or_recover(self, nodes: Iterable[int]) -> None:
        """Restore capacity for ``nodes``: immediately, or via the policy.

        Without a :class:`RecoveryPolicy` the nodes run acquisition passes
        right now (the legacy repair behaviour); with one, each node gets a
        scheduled retry chain with exponential backoff.
        """
        nodes = [int(x) for x in nodes if self.online[int(x)]]
        if self.recovery is not None:
            self._schedule_recovery(nodes)
            return
        adj, caps = self.builder.adj, self.builder.capacities
        with _obs.span("faults.repair"):
            for _ in range(2):
                needy = [x for x in nodes if adj.degree(x) < caps[x]]
                if not needy:
                    break
                for x in needy:
                    self.builder._acquire(x, allow_swap=False)

    def _schedule_recovery(self, nodes: Iterable[int]) -> None:
        adj, caps = self.builder.adj, self.builder.capacities
        for node in nodes:
            node = int(node)
            if not self.online[node] or adj.degree(node) >= caps[node]:
                continue
            self._schedule_recovery_attempt(node, attempt=1)

    def _schedule_recovery_attempt(self, node: int, attempt: int) -> None:
        epoch = int(self._epoch[node])
        self._sim.schedule(
            self.recovery.retry_delay(attempt),
            lambda sim, n=node, a=attempt, e=epoch: self._recovery_attempt(n, a, e),
            label="recovery",
        )

    def _recovery_attempt(self, node: int, attempt: int, epoch: int) -> None:
        if epoch != self._epoch[node] or not self.online[node]:
            _obs.count("recovery.cancelled")
            return
        outcome = recovery_attempt(
            self.builder, node, self.recovery, attempt,
            rng=self._fault_rng, online=self.online,
        )
        if outcome == "retry":
            self._schedule_recovery_attempt(node, attempt + 1)

    def _snapshot(self, sim: Simulator) -> None:
        online_ids = np.flatnonzero(self.online)
        graph = self.builder.adj.freeze()
        sub, _ = graph.subgraph(online_ids)
        if sub.n_nodes:
            n_comp, labels = sub.connected_components()
            giant = float(np.bincount(labels).max() / sub.n_nodes)
            mean_deg = sub.mean_degree
        else:  # pragma: no cover - everyone offline simultaneously
            n_comp, giant, mean_deg = 0, 0.0, 0.0
        snap = ChurnSnapshot(
            time=sim.now,
            n_online=int(online_ids.size),
            n_components=n_comp,
            giant_fraction=giant,
            mean_degree=mean_deg,
            search_success=self._probe_search(sub),
        )
        self.snapshots.append(snap)
        _obs.count("churn.snapshots")
        _obs.gauge("churn.online_nodes", snap.n_online)
        _obs.gauge("churn.giant_fraction", snap.giant_fraction)
        cache = getattr(self.builder, "rating_cache", None)
        if cache is not None:
            _obs.gauge("rating_cache.entries", len(cache))
        _obs.event(
            "churn.snapshot", t=sim.now, online=snap.n_online,
            components=snap.n_components, giant=snap.giant_fraction,
        )
        if self.content is not None:
            self.content.on_snapshot(sim.now)
        sim.schedule(self.churn_config.snapshot_interval, self._snapshot, label="snapshot")

    def _health_sample(self, sim: Simulator) -> None:
        self.health_sampler.sample(
            t=sim.now,
            graph=self.builder.adj.freeze(),
            online=self.online,
            membership=self.builder.membership,
        )
        sim.schedule(
            self.churn_config.health_interval, self._health_sample,
            label="health",
        )

    def _probe_search(self, online_graph) -> float:
        """End-to-end search availability: flooding probes on the live overlay."""
        cfg = self.churn_config
        if cfg.probe_queries == 0 or online_graph.n_nodes < 2:
            return float("nan")
        from repro.search.flooding import flood

        n = online_graph.n_nodes
        replicas = min(cfg.probe_replicas, n)
        hits = 0
        with _obs.span("churn.probe_search"):
            for _ in range(cfg.probe_queries):
                holders = self._probe_rng.choice(n, size=replicas, replace=False)
                mask = np.zeros(n, dtype=bool)
                mask[holders] = True
                source = int(self._probe_rng.integers(0, n))
                # Keys advance even when no loss window is active, so the
                # k-th probe of a run makes identical drop decisions no
                # matter when earlier windows opened or closed.
                key = self._probe_key
                self._probe_key += 1
                hits += flood(online_graph, source, cfg.probe_ttl,
                              replica_mask=mask, faults=self.active_faults,
                              query_key=key).success
        return hits / cfg.probe_queries
