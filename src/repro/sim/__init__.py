"""Discrete-event protocol simulation.

:mod:`repro.sim.engine` is a minimal heap-based event loop;
:mod:`repro.sim.churn` drives a live Makalu overlay through node
sessions — joins, departures with instant edge loss, survivor repair and
rejoins — to exercise the maintenance protocol the static builder only
approximates.
"""

from repro.sim.churn import ChurnConfig, ChurnSimulation, ChurnSnapshot
from repro.sim.engine import Event, Simulator
from repro.sim.queueing import QueuedFloodResult, queued_flood

__all__ = [
    "Simulator",
    "Event",
    "ChurnConfig",
    "ChurnSimulation",
    "ChurnSnapshot",
    "queued_flood",
    "QueuedFloodResult",
]
