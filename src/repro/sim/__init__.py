"""Discrete-event protocol simulation.

:mod:`repro.sim.engine` is a minimal heap-based event loop;
:mod:`repro.sim.churn` drives a live Makalu overlay through node
sessions — joins, departures with instant edge loss, survivor repair and
rejoins — to exercise the maintenance protocol the static builder only
approximates.
"""

from repro.sim.churn import ChurnConfig, ChurnSimulation, ChurnSnapshot
from repro.sim.engine import Event, Simulator
from repro.sim.queueing import (
    QueuedFloodResult,
    SaturationSweep,
    WorkloadRunResult,
    draw_workload_sources,
    queued_flood,
    saturation_sweep,
    scale_workload,
    simulate_workload,
)

__all__ = [
    "Simulator",
    "Event",
    "ChurnConfig",
    "ChurnSimulation",
    "ChurnSnapshot",
    "queued_flood",
    "QueuedFloodResult",
    "WorkloadRunResult",
    "SaturationSweep",
    "simulate_workload",
    "saturation_sweep",
    "scale_workload",
    "draw_workload_sources",
]
