"""Attenuated Bloom filters over an overlay (paper Section 4.6).

"An attenuated Bloom filter is a hierarchy of Bloom filters, each of which
contains aggregate information about some set of nodes.  Specifically, the
Bloom filter at level i represents the aggregate content store on nodes
that are i hops away."  [after Rhea & Kubiatowicz]

Construction is the neighbor-exchange the protocol performs: level 0 is a
node's own content digest; level ``i`` is the OR of its neighbors' level
``i-1`` filters ("peers need only communicate with their direct neighbors
to discover information about their neighborhood").  Because the exchange
is symmetric, level ``i`` slightly over-approximates the exact
distance-``i`` shell — content within ``i`` hops of matching parity also
appears — which only makes the routing potential more conservative, never
blind.  Deeper levels aggregate more nodes, so their false-positive rate
rises; the router therefore trusts shallow levels first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.obs import runtime as _obs
from repro.search.bloom import BloomParams, insert_keys, key_positions, make_filters
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph
from repro.util.segments import segment_bitwise_or


@dataclass(frozen=True)
class AttenuatedFilters:
    """Per-node attenuated Bloom filters of a whole overlay.

    ``levels[i]`` is an ``(n_nodes, n_words)`` uint64 array: node ``u``'s
    level-``i`` filter is row ``levels[i][u]``.  ``NO_MATCH`` (== depth) is
    the sentinel returned by :meth:`matched_level` when no level matches.
    """

    params: BloomParams
    levels: Tuple[np.ndarray, ...]

    @property
    def depth(self) -> int:
        """Number of levels (the paper's experiments use depth 3)."""
        return len(self.levels)

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered."""
        return self.levels[0].shape[0]

    @property
    def no_match(self) -> int:
        """Sentinel level meaning "no level of this filter matched"."""
        return self.depth

    def matched_level(self, nodes: np.ndarray, key: int) -> np.ndarray:
        """Shallowest level whose filter at each node contains ``key``.

        Returns an int array aligned with ``nodes``; entries equal
        :attr:`no_match` where no level matches.  Level 0 means the node
        itself (probably) stores the object; level ``i`` means some node
        within its level-``i`` aggregate does.
        """
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        words, masks = key_positions(np.asarray([key]), self.params)
        w, m = words[0], masks[0]
        out = np.full(nodes.size, self.no_match, dtype=np.int64)
        for level in range(self.depth - 1, -1, -1):
            probe = self.levels[level][nodes][:, w]
            hit = np.all((probe & m) == m, axis=1)
            out[hit] = level
        return out

    def neighbor_levels(
        self, graph, u: int, targets: np.ndarray, key: int
    ) -> np.ndarray:
        """Router hook: score the filters of ``u``'s neighbors ``targets``.

        For per-node filters this is simply each target's own hierarchy
        (what the target shared with ``u`` on connection); the per-link
        variant overrides this with link-specific filters.
        """
        return self.matched_level(targets, key)

    def contains(self, node: int, level: int, key: int) -> bool:
        """Membership test of ``key`` in one node's level-``level`` filter."""
        if not 0 <= level < self.depth:
            raise IndexError(f"level {level} out of range [0, {self.depth})")
        return bool(self.matched_level(np.asarray([node]), key)[0] <= level)


def aggregate_neighbors(
    graph: OverlayGraph, rows: np.ndarray, chunk_nodes: int = 8192
) -> np.ndarray:
    """OR each node's neighbors' filter rows (one exchange round).

    ``rows`` is ``(n_nodes, n_words)``; the result row ``u`` is the OR of
    ``rows[v]`` over ``v in neighbors(u)``.  Work is chunked over nodes so
    the gathered intermediate stays bounded.
    """
    n = graph.n_nodes
    if rows.shape[0] != n:
        raise ValueError("rows must have one filter per node")
    out = np.zeros_like(rows)
    indptr = graph.indptr
    indices = graph.indices
    for start in range(0, n, chunk_nodes):
        end = min(start + chunk_nodes, n)
        lo, hi = indptr[start], indptr[end]
        gathered = rows[indices[lo:hi]]
        local_ptr = indptr[start : end + 1] - lo
        out[start:end] = segment_bitwise_or(gathered, local_ptr)
    return out


def build_attenuated_filters(
    graph: OverlayGraph,
    placement: Optional[Placement] = None,
    depth: int = 3,
    params: Optional[BloomParams] = None,
    node_store: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> AttenuatedFilters:
    """Build depth-``depth`` attenuated filters for a whole overlay.

    Content comes from ``placement`` (or an explicit ``node_store`` CSR of
    per-node keys).  Level 0 digests each node's own store; each further
    level is one neighbor-exchange aggregation round.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if (placement is None) == (node_store is None):
        raise ValueError("provide exactly one of placement or node_store")
    params = params or BloomParams()

    if placement is not None:
        if placement.n_nodes != graph.n_nodes:
            raise ValueError("placement and graph node counts disagree")
        store_indptr, store_keys = placement.node_store()
    else:
        store_indptr, store_keys = node_store
        if store_indptr.shape != (graph.n_nodes + 1,):
            raise ValueError("node_store indptr must have n_nodes + 1 entries")

    with _obs.span("abf.build"):
        level0 = make_filters(graph.n_nodes, params)
        owners = np.repeat(
            np.arange(graph.n_nodes, dtype=np.int64), np.diff(store_indptr)
        )
        insert_keys(level0, owners, store_keys, params)

        levels = [level0]
        for _ in range(1, depth):
            with _obs.span("abf.aggregate_level"):
                levels.append(aggregate_neighbors(graph, levels[-1]))
    _obs.count("abf.filters_built", graph.n_nodes * depth)
    _obs.event("abf.build", nodes=graph.n_nodes, depth=depth,
               bits=params.n_bits)
    return AttenuatedFilters(params=params, levels=tuple(levels))
