"""Gia-style search: capacity-biased walk with one-hop replication.

The second half of the Gia design [Chawathe et al.]: each node indexes its
*neighbors'* content (one-hop replication), so a query is answered as soon
as the walk lands adjacent to a holder; the walk itself is biased toward
high-capacity nodes, which — on Gia's capacity-proportional topology —
are also the high-degree nodes with the biggest one-hop indexes.

The paper's related-work critique ("Gnutella's topology is no longer a
power law topology thus limiting Gia's effectiveness") is measurable here:
run :func:`gia_search` on a :func:`~repro.topology.gia.gia_graph` (its
native habitat) versus on a Makalu overlay (uniform capacities, no hubs to
climb) and compare against flooding at matched success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import runtime as _obs
from repro.search.metrics import QueryRecord
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class GiaSearchResult:
    """Outcome of one Gia walk."""

    source: int
    messages: int
    hit_step: int  # walk step at which a holder became visible, -1 if none
    resolved_at: int  # the holder found (possibly a neighbor of the walk)

    @property
    def success(self) -> bool:
        """Whether a holder was located."""
        return self.hit_step >= 0

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record."""
        return QueryRecord(
            source=self.source, messages=self.messages,
            first_hit_hop=self.hit_step,
        )


def gia_search(
    graph: OverlayGraph,
    capacities: np.ndarray,
    source: int,
    replica_mask: np.ndarray,
    max_steps: int = 128,
    seed: SeedLike = None,
) -> GiaSearchResult:
    """One capacity-biased walk with one-hop replication checks.

    At each node the walk (a) answers immediately if the node or any of
    its neighbors holds the object (the one-hop index), then (b) moves to
    the highest-capacity neighbor not yet visited — Gia's bias — falling
    back to the least-recently-visited neighbor at dead ends (Gia's token
    bookkeeping approximated by visit recency).  Each hop costs one
    message.
    """
    check_node_id("source", source, graph.n_nodes)
    if capacities.shape != (graph.n_nodes,):
        raise ValueError("capacities must have one entry per node")
    if replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    if max_steps < 0:
        raise ValueError(f"max_steps must be >= 0, got {max_steps}")
    rng = as_generator(seed)

    last_visit = np.full(graph.n_nodes, -1, dtype=np.int64)
    current = source
    messages = 0

    session = _obs.active()
    tracer = session.tracer if session is not None else None

    for step in range(max_steps + 1):
        last_visit[current] = step
        # One-hop replication: the node's index covers itself + neighbors.
        if replica_mask[current]:
            _record_gia(session, tracer, source, messages,
                        step if messages else 0)
            return GiaSearchResult(source=source, messages=messages,
                                   hit_step=step if messages else 0,
                                   resolved_at=current)
        nbrs = graph.neighbors(current)
        if nbrs.size:
            held = nbrs[replica_mask[nbrs]]
            if held.size:
                _record_gia(session, tracer, source, messages, step)
                return GiaSearchResult(source=source, messages=messages,
                                       hit_step=step, resolved_at=int(held[0]))
        if step == max_steps or nbrs.size == 0:
            break
        fresh = nbrs[last_visit[nbrs] < 0]
        if fresh.size:
            # Highest capacity first; ties broken randomly.
            caps = capacities[fresh]
            best = fresh[caps == caps.max()]
            nxt = int(best[rng.integers(0, best.size)])
        else:
            # All neighbors seen: revisit the least recently visited.
            nxt = int(nbrs[np.argmin(last_visit[nbrs])])
        current = nxt
        messages += 1
        if tracer is not None:
            tracer.emit("gia.step", source=source, step=step + 1, node=nxt)

    _record_gia(session, tracer, source, messages, -1)
    return GiaSearchResult(source=source, messages=messages, hit_step=-1,
                           resolved_at=-1)


def _record_gia(session, tracer, source, messages, hit_step) -> None:
    """Final per-walk metrics/trace (no-op when observability is off)."""
    if session is None:
        return
    reg = session.metrics
    reg.counter("search.gia.queries").inc()
    reg.counter("search.gia.messages_sent").inc(messages)
    reg.histogram("search.gia.messages_per_query").observe(float(messages))
    if tracer is not None:
        tracer.emit(
            "gia.query", source=source, messages=messages, hit_step=hit_step,
        )
