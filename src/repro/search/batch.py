"""Batched multi-source flood kernel (bit-parallel across queries).

:func:`repro.search.flooding.flood` advances one BFS frontier per call; at
benchmark scale the per-query loop around it — and especially the per-query
``np.unique`` frontier dedup — dominates wall time.  This module advances
*many* floods simultaneously using a transposed bitset layout: visited and
frontier state live in ``(n_nodes, ceil(n_queries / 64))`` uint64 arrays
where row ``v`` is a bitmask of the queries that have reached node ``v``.
One BFS level is then a single :func:`~repro.topology.csr.gather_neighbors`
over the union frontier followed by ``new[dst] |= frontier[src]`` — 64
queries propagate per word with no sorting and no per-pair dedup, because
the OR *is* the dedup.  Per-query message / duplicate / first-hit
accounting falls out of unpacking the frontier bitmasks and a couple of
small matrix products.

The kernel is **bit-identical** to the scalar ``flood``: for every query it
produces the same ``FloodResult`` fields (per-hop arrays included) and the
same observability counters, histogram observations and trace events, in
the same per-query order (``tests/search/test_batch.py`` enforces this).
Floods contain no randomness — sources and replica masks fully determine
the outcome — which is what makes exact batching possible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.link import LinkFaults

from repro.obs import runtime as _obs
from repro.search.flooding import FloodResult
from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.util.validation import check_node_id

_ONE = np.uint64(1)
_WORD = np.uint64(63)
_SIX = np.uint64(6)


def _unpack_queries(words: np.ndarray, n_queries: int) -> np.ndarray:
    """Expand ``(rows, n_words)`` uint64 bitmasks to ``(rows, n_queries)`` 0/1.

    Bit ``q`` of a row's mask (little-endian within each word) is query
    ``q``'s membership flag for that row's node.
    """
    le = np.ascontiguousarray(words, dtype="<u8")
    bits = np.unpackbits(
        le.view(np.uint8).reshape(words.shape[0], -1),
        axis=1, bitorder="little",
    )
    return bits[:, :n_queries]


def _pack_queries(flags: np.ndarray) -> np.ndarray:
    """Pack a ``(n_queries,)`` boolean vector into ``(n_words,)`` uint64."""
    n_words = (flags.size + 63) >> 6
    padded = np.zeros(n_words * 64, dtype=np.uint8)
    padded[: flags.size] = flags
    return np.packbits(padded, bitorder="little").view("<u8").astype(np.uint64)


def _pack_rows(flags: np.ndarray) -> np.ndarray:
    """Pack ``(rows, n_queries)`` booleans into ``(rows, n_words)`` uint64."""
    rows, nq = flags.shape
    n_words = (nq + 63) >> 6
    padded = np.zeros((rows, n_words * 64), dtype=np.uint8)
    padded[:, :nq] = flags
    return (
        np.packbits(padded, axis=1, bitorder="little")
        .view("<u8")
        .astype(np.uint64)
    )


def flood_batch(
    graph: OverlayGraph,
    sources: Sequence[int],
    ttl: int,
    replica_masks: Optional[np.ndarray] = None,
    faults: Optional["LinkFaults"] = None,
    query_keys: Optional[np.ndarray] = None,
) -> list[FloodResult]:
    """Run one duplicate-suppressed flood per entry of ``sources`` at once.

    Parameters
    ----------
    sources:
        ``(n_queries,)`` source node of each flood.
    ttl:
        Shared maximum hop distance (Gnutella TTL semantics).
    replica_masks:
        Optional ``(n_queries, n_nodes)`` boolean holder masks, one row per
        query; row ``i`` plays the role of scalar ``flood``'s
        ``replica_mask`` for query ``i``.
    faults:
        Optional :class:`~repro.faults.link.LinkFaults` loss environment,
        applied per transit message exactly as in scalar ``flood``.
    query_keys:
        ``(n_queries,)`` loss-stream keys, the per-query ``query_key`` of
        scalar ``flood``.  Callers slicing a larger workload into batches
        must pass the *global* workload indices (never ``0..batch-1``), or
        worker counts would change which messages drop.  Defaults to
        ``arange(n_queries)``.

    Returns
    -------
    One :class:`~repro.search.flooding.FloodResult` per query, in input
    order, field-for-field identical to ``flood(graph, sources[i], ttl,
    replica_masks[i])``.
    """
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    if sources.ndim != 1:
        raise ValueError("sources must be 1-D")
    nq = sources.size
    n = graph.n_nodes
    if nq:
        check_node_id("source", int(sources.min()), n)
        check_node_id("source", int(sources.max()), n)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    if replica_masks is not None:
        replica_masks = np.asarray(replica_masks, dtype=bool)
        if replica_masks.shape != (nq, n):
            raise ValueError("replica_masks must be (n_queries, n_nodes)")
    lossy = faults is not None and faults.lossy
    if query_keys is None:
        query_keys = np.arange(nq, dtype=np.int64)
    else:
        query_keys = np.asarray(query_keys, dtype=np.int64)
        if query_keys.shape != (nq,):
            raise ValueError("query_keys must have one entry per query")

    messages = np.zeros((nq, ttl), dtype=np.int64)
    new_nodes = np.zeros((nq, ttl), dtype=np.int64)
    duplicates = np.zeros((nq, ttl), dtype=np.int64)
    dropped = np.zeros((nq, ttl), dtype=np.int64) if lossy else None
    first_hit = np.full(nq, -1, dtype=np.int64)
    replicas_found = np.zeros(nq, dtype=np.int64)

    if nq:
        qids = np.arange(nq, dtype=np.int64)
        if replica_masks is not None:
            src_holds = replica_masks[qids, sources]
            first_hit[src_holds] = 0
            replicas_found[src_holds] = 1

        n_words = (nq + 63) >> 6
        qbits = qids.astype(np.uint64)
        visited = np.zeros((n, n_words), dtype=np.uint64)
        np.bitwise_or.at(
            visited,
            (sources, (qbits >> _SIX).astype(np.int64)),
            _ONE << (qbits & _WORD),
        )
        frontier = visited.copy()
        degrees = np.diff(graph.indptr)

        with _obs.span("search.flood_batch"):
            for h in range(1, ttl + 1):
                rows = np.flatnonzero(frontier.any(axis=1))
                if rows.size == 0:
                    break
                fbits = _unpack_queries(frontier[rows], nq).astype(np.int64)
                sent = degrees[rows] @ fbits
                if h > 1:
                    sent -= fbits.sum(axis=0)
                # A query whose frontier would send nothing stops here
                # without recording the hop, exactly like the scalar
                # ``sent <= 0`` break.
                live = sent > 0
                if not live.any():
                    break
                if not live.all():
                    frontier &= _pack_queries(live)

                new = np.zeros_like(visited)
                nbrs, owner_pos = gather_neighbors(graph, rows)
                if lossy:
                    # (pairs, nq) drop decisions — element [j, q] is
                    # exactly scalar flood's decision for query q on the
                    # message senders[j] -> nbrs[j], so ANDing the packed
                    # keep mask into the delivery OR loses the same
                    # messages the scalar loop loses.
                    senders = rows[owner_pos]
                    dropmat = faults.drop(query_keys, h, senders, nbrs)
                    fpairs = _unpack_queries(frontier[rows], nq).astype(
                        bool
                    )[owner_pos]
                    dropped_h = (dropmat & fpairs).sum(axis=0, dtype=np.int64)
                    dropped[live, h - 1] = dropped_h[live]
                    deliver = frontier[senders] & _pack_rows(~dropmat)
                    np.bitwise_or.at(new, nbrs, deliver)
                else:
                    np.bitwise_or.at(new, nbrs, frontier[rows[owner_pos]])
                # Fresh arrivals only; the OR above already deduped
                # same-hop duplicates per query.
                np.bitwise_and(new, ~visited, out=new)
                visited |= new
                frontier = new

                new_rows = np.flatnonzero(new.any(axis=1))
                if new_rows.size:
                    nbits = _unpack_queries(new[new_rows], nq)
                    new_q = nbits.sum(axis=0, dtype=np.int64)
                else:
                    nbits = None
                    new_q = np.zeros(nq, dtype=np.int64)
                messages[live, h - 1] = sent[live]
                new_nodes[live, h - 1] = new_q[live]
                duplicates[live, h - 1] = sent[live] - new_q[live]

                if replica_masks is not None and nbits is not None:
                    hits = np.einsum(
                        "qv,vq->q", replica_masks[:, new_rows], nbits,
                        dtype=np.int64,
                    )
                    first_hit[(hits > 0) & (first_hit < 0)] = h
                    replicas_found += hits

    results = [
        FloodResult(
            source=int(sources[q]),
            ttl=ttl,
            messages_per_hop=messages[q],
            new_nodes_per_hop=new_nodes[q],
            duplicates_per_hop=duplicates[q],
            first_hit_hop=int(first_hit[q]),
            replicas_found=int(replicas_found[q]),
            dropped_per_hop=dropped[q] if lossy else None,
        )
        for q in range(nq)
    ]
    _record_obs(results)
    return results


def _record_obs(results: list[FloodResult]) -> None:
    """Emit the same counters/histograms/events scalar ``flood`` would.

    Scalar flooding records per query; replaying the batch in query order
    reproduces the identical metric totals and trace stream, so enabling
    batching never changes what an observability session reports.
    """
    session = _obs.active()
    if session is None:
        return
    reg = session.metrics
    tracer = session.tracer
    queries = reg.counter("search.flood.queries")
    sent_c = reg.counter("search.flood.messages_sent")
    dup_c = reg.counter("search.flood.duplicates")
    hist = reg.histogram("search.flood.messages_per_query")
    for r in results:
        total = int(r.messages_per_hop.sum())
        queries.inc()
        sent_c.inc(total)
        dup_c.inc(int(r.duplicates_per_hop.sum()))
        if r.dropped_per_hop is not None:
            reg.counter("search.flood.messages_lost").inc(
                int(r.dropped_per_hop.sum())
            )
        hist.observe(float(total))
        if tracer is not None:
            for h in np.flatnonzero(r.messages_per_hop > 0):
                if r.dropped_per_hop is not None:
                    tracer.emit(
                        "flood.hop", source=r.source, hop=int(h) + 1,
                        sent=int(r.messages_per_hop[h]),
                        new=int(r.new_nodes_per_hop[h]),
                        dup=int(r.duplicates_per_hop[h]),
                        lost=int(r.dropped_per_hop[h]),
                    )
                else:
                    tracer.emit(
                        "flood.hop", source=r.source, hop=int(h) + 1,
                        sent=int(r.messages_per_hop[h]),
                        new=int(r.new_nodes_per_hop[h]),
                        dup=int(r.duplicates_per_hop[h]),
                    )
            tracer.emit(
                "flood.query", source=r.source, ttl=r.ttl, messages=total,
                first_hit_hop=r.first_hit_hop,
                replicas_found=r.replicas_found,
            )


def placement_masks(placement, objects: np.ndarray) -> np.ndarray:
    """Stack per-query holder masks for a vector of object indices.

    Row ``i`` is ``placement.holder_mask(objects[i])`` — the 2-D mask form
    :func:`flood_batch` consumes.
    """
    objects = np.asarray(objects, dtype=np.int64)
    masks = np.zeros((objects.size, placement.n_nodes), dtype=bool)
    for i, obj in enumerate(objects):
        masks[i, placement.replicas(int(obj))] = True
    return masks
