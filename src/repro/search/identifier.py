"""Indexed identifier search routed by attenuated Bloom filters (Section 4.6).

"Searches using attenuated Bloom filters were resolved quickly because at
each hop in the search, the potential function guiding the search was able
to make high quality decisions."

At each node the query holder scores every unvisited neighbor by the
*shallowest* filter level containing the queried key — shallow levels have
low false-positive rates, so "results from Bloom filters near the top of
the hierarchy are given more weight".  The query is forwarded to the
best-scoring neighbor (ties broken toward lower link latency, then lower
id); when no neighbor's filter matches at any level, the search falls back
to a random unvisited neighbor, and when a node has no unvisited neighbors
it backtracks along its path.  Every forward or backtrack costs one message
and one unit of TTL — the paper reports messages and hops interchangeably
for this mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs
from repro.search.attenuated import AttenuatedFilters
from repro.search.metrics import QueryRecord
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class IdentifierSearchResult:
    """Outcome of one identifier query."""

    source: int
    target_key: int
    messages: int
    resolved_at: int  # node id holding the object, or -1
    path: np.ndarray  # nodes the query traveled through, source first

    @property
    def success(self) -> bool:
        """Whether the query reached an actual holder of the object."""
        return self.resolved_at >= 0

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record.

        For identifier search messages double as hops, so a successful
        query's first-hit hop is its message count.
        """
        return QueryRecord(
            source=self.source,
            messages=self.messages,
            first_hit_hop=self.messages if self.success else -1,
        )


class AbfRouter:
    """Identifier-query router over one overlay + filter set.

    ``filters`` may be the per-node :class:`AttenuatedFilters` (the default
    neighbor-exchange variant) or
    :class:`~repro.search.attenuated_perlink.PerLinkAttenuatedFilters`
    (the exact Rhea-Kubiatowicz per-link variant); both expose the
    ``neighbor_levels`` / ``no_match`` protocol the router consumes.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        filters: AttenuatedFilters,
    ):
        n_nodes = getattr(filters, "n_nodes", None)
        if n_nodes is not None and n_nodes != graph.n_nodes:
            raise ValueError("filters and graph node counts disagree")
        link_indptr = getattr(filters, "indptr", None)
        if link_indptr is not None and not np.array_equal(
            link_indptr, graph.indptr
        ):
            raise ValueError("per-link filters were built for a different graph")
        self.graph = graph
        self.filters = filters

    def query(
        self,
        source: int,
        key: int,
        holder_mask: np.ndarray,
        ttl: int = 25,
        backtrack: bool = True,
        seed: SeedLike = None,
        faults=None,
        query_key: int = 0,
    ) -> IdentifierSearchResult:
        """Route one query for ``key`` starting at ``source``.

        Parameters
        ----------
        holder_mask:
            Ground-truth per-node holder mask — used only to decide whether
            a visited node actually resolves the query (Bloom filters route;
            they never declare success themselves, so false positives cost
            messages but cannot fabricate hits).
        ttl:
            Message budget.
        backtrack:
            Pop back along the path (costing a message) at dead ends; with
            False the query dies instead.
        faults:
            Optional :class:`~repro.faults.link.LinkFaults`.  A dropped
            transmission (forward or backtrack) burns the message and its
            TTL unit but the query never arrives — the holder keeps the
            query and retries on the next iteration with a fresh drop
            decision.  Decisions are counter-based over ``(faults.seed,
            query_key, message index, sender, receiver)``, so sharded
            execution loses the same messages as the serial loop.
        query_key:
            Identity of this query in the loss stream (global workload
            index when issued in batches).
        """
        graph = self.graph
        check_node_id("source", source, graph.n_nodes)
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        if holder_mask.shape != (graph.n_nodes,):
            raise ValueError("holder_mask must have one entry per node")
        rng = as_generator(seed)
        lossy = faults is not None and faults.lossy

        visited = np.zeros(graph.n_nodes, dtype=bool)
        visited[source] = True
        path = [source]
        stack = [source]
        current = source
        messages = 0

        session = _obs.active()
        tracer = session.tracer if session is not None else None

        if holder_mask[current]:
            self._record_query(session, tracer, source, 0, current,
                               lost=0 if lossy else None)
            return IdentifierSearchResult(
                source=source, target_key=key, messages=0,
                resolved_at=current, path=np.asarray(path, dtype=np.int64),
            )

        lost = 0
        while messages < ttl:
            nbrs = graph.neighbors(current)
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                if not backtrack or len(stack) <= 1:
                    break
                target = stack[-2]
                messages += 1
                if lossy and bool(
                    faults.drop(query_key, messages, current, target)
                ):
                    lost += 1
                    if tracer is not None:
                        tracer.emit("abf.route", node=current, chosen=target,
                                    decision="lost")
                    continue
                stack.pop()
                current = target
                path.append(current)
                if tracer is not None:
                    tracer.emit("abf.route", node=path[-2], chosen=current,
                                decision="backtrack")
                continue

            levels = self.filters.neighbor_levels(graph, current, fresh, key)
            best = int(levels.min())
            if best < self.filters.no_match:
                tied = fresh[levels == best]
                if tied.size > 1:
                    # Prefer the lowest-latency link among equally promising
                    # neighbors; the filters cannot distinguish them.
                    lats = self._latencies_to(current, tied)
                    tied = tied[np.lexsort((tied, lats))]
                nxt = int(tied[0])
                decision = "filter"
            else:
                # No signal anywhere: wander to a random unvisited neighbor
                # until some filter horizon comes into view.
                nxt = int(fresh[rng.integers(0, fresh.size)])
                decision = "random"

            messages += 1
            if lossy and bool(faults.drop(query_key, messages, current, nxt)):
                # The forwarded query vanished in transit: TTL is spent,
                # the neighbor never saw it, and the holder retries next
                # iteration (possibly re-picking the same best neighbor
                # under a fresh drop decision).
                lost += 1
                if tracer is not None:
                    tracer.emit("abf.route", node=current, chosen=nxt,
                                decision="lost")
                continue
            if tracer is not None:
                tracer.emit(
                    "abf.route", node=current, chosen=nxt, decision=decision,
                    level=best if decision == "filter" else None,
                    fanout=int(fresh.size),
                )
            if session is not None:
                session.metrics.counter(f"search.abf.routed_{decision}").inc()

            visited[nxt] = True
            stack.append(nxt)
            path.append(nxt)
            current = nxt
            if holder_mask[current]:
                self._record_query(session, tracer, source, messages, current,
                                   lost=lost if lossy else None)
                return IdentifierSearchResult(
                    source=source, target_key=key, messages=messages,
                    resolved_at=current, path=np.asarray(path, dtype=np.int64),
                )

        self._record_query(session, tracer, source, messages, -1,
                           lost=lost if lossy else None)
        return IdentifierSearchResult(
            source=source, target_key=key, messages=messages,
            resolved_at=-1, path=np.asarray(path, dtype=np.int64),
        )

    @staticmethod
    def _record_query(
        session, tracer, source, messages, resolved_at, lost=None
    ) -> None:
        """Final per-query metrics/trace (no-op when observability is off)."""
        if session is None:
            return
        reg = session.metrics
        reg.counter("search.abf.queries").inc()
        reg.counter("search.abf.messages_sent").inc(messages)
        if lost is not None:
            reg.counter("search.abf.messages_lost").inc(lost)
        reg.histogram("search.abf.messages_per_query").observe(float(messages))
        if tracer is not None:
            tracer.emit(
                "abf.query", source=source, messages=messages,
                resolved_at=resolved_at,
            )

    def _latencies_to(self, u: int, targets: np.ndarray) -> np.ndarray:
        """Link latencies from ``u`` to a subset of its neighbors."""
        nbrs = self.graph.neighbors(u)
        lats = self.graph.neighbor_latencies(u)
        pos = np.searchsorted(nbrs, targets)
        return lats[pos]


def _run_identifier_shard(payload) -> list[IdentifierSearchResult]:
    """One worker's slice of an identifier workload (module-level: picklable)."""
    router, placement, sources, objects, ttl, rngs, faults, keys = payload
    results = []
    for src, obj, rng, qkey in zip(sources, objects, rngs, keys):
        mask = placement.holder_mask(int(obj))
        results.append(
            router.query(
                int(src), placement.key_of(int(obj)), mask, ttl=ttl, seed=rng,
                faults=faults, query_key=int(qkey),
            )
        )
    return results


def identifier_queries(
    router: AbfRouter,
    placement: Placement,
    n_queries: int,
    ttl: int = 25,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
    n_workers: int = 1,
    faults=None,
) -> list[IdentifierSearchResult]:
    """Issue a batch of identifier queries for random placement objects.

    Each query routes with its own child generator spawned from the seed
    (``SeedSequence.spawn``), so results are independent of how the batch
    is executed: ``n_workers > 1`` shards the workload across processes
    via :func:`repro.parallel.map_shards` and returns bit-identical
    results in the same order as the serial loop.  With ``faults``, loss
    keys are the global workload indices, preserving that invariance.
    """
    graph = router.graph
    if placement.n_nodes != graph.n_nodes:
        raise ValueError("placement and graph node counts disagree")
    rng = as_generator(seed)
    if sources is None:
        sources = rng.integers(0, graph.n_nodes, size=n_queries)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size != n_queries:
            raise ValueError("sources must have one entry per query")
    objects = rng.integers(0, placement.n_objects, size=n_queries)
    query_rngs = spawn_generators(rng, n_queries)
    query_keys = np.arange(n_queries, dtype=np.int64)
    if n_workers == 1:
        return _run_identifier_shard(
            (router, placement, sources, objects, ttl, query_rngs, faults,
             query_keys)
        )

    from repro.parallel import map_shards
    from repro.parallel.runner import _shard_bounds

    payloads = [
        (router, placement, sources[a:b], objects[a:b], ttl,
         query_rngs[a:b], faults, query_keys[a:b])
        for a, b in _shard_bounds(n_queries, n_workers)
    ]
    return [
        r for shard in map_shards(_run_identifier_shard, payloads, n_workers)
        for r in shard
    ]
