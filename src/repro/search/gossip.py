"""Two-phase flood + epidemic search (paper Section 4.4 extension).

"Epidemic algorithms might be deployed beyond the Convergence Boundary to
reduce the number of such duplicates."  This module implements that
suggestion: a query floods normally while paths are still disjoint (the
expanding phase), then switches to epidemic push with a bounded fanout once
it crosses the Convergence Boundary, trading exhaustive coverage for far
fewer duplicate messages in the converging phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.search.metrics import QueryRecord
from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class GossipSearchResult:
    """Accounting of one flood+gossip query."""

    source: int
    flood_ttl: int
    gossip_rounds: int
    fanout: int
    flood_messages: int
    gossip_messages: int
    first_hit_hop: int  # flood hop or flood_ttl + gossip round
    nodes_visited: int

    @property
    def total_messages(self) -> int:
        """Messages across both phases."""
        return self.flood_messages + self.gossip_messages

    @property
    def success(self) -> bool:
        """Whether at least one replica was located."""
        return self.first_hit_hop >= 0

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record."""
        return QueryRecord(
            source=self.source,
            messages=self.total_messages,
            first_hit_hop=self.first_hit_hop,
        )


def flood_then_gossip(
    graph: OverlayGraph,
    source: int,
    replica_mask: Optional[np.ndarray],
    flood_ttl: int,
    gossip_rounds: int,
    fanout: int = 2,
    seed: SeedLike = None,
) -> GossipSearchResult:
    """Flood to ``flood_ttl`` hops, then push epidemically for extra rounds.

    During gossip, every node informed in the previous round forwards the
    query to ``fanout`` uniformly random neighbors (duplicates possible —
    that is the epidemic trade-off: O(fanout) messages per informed node
    instead of O(degree)).
    """
    check_node_id("source", source, graph.n_nodes)
    if flood_ttl < 0 or gossip_rounds < 0:
        raise ValueError("flood_ttl and gossip_rounds must be >= 0")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if replica_mask is not None and replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    rng = as_generator(seed)

    indptr = graph.indptr
    indices = graph.indices
    visited = np.zeros(graph.n_nodes, dtype=bool)
    visited[source] = True
    first_hit = -1
    if replica_mask is not None and replica_mask[source]:
        first_hit = 0

    # --- Phase 1: expanding flood (same accounting as search.flooding).
    flood_msgs = 0
    frontier = np.asarray([source], dtype=np.int64)
    for h in range(1, flood_ttl + 1):
        degs = indptr[frontier + 1] - indptr[frontier]
        sent = int(degs.sum()) - (frontier.size if h > 1 else 0)
        if sent <= 0:
            break
        flood_msgs += sent
        nbrs, _ = gather_neighbors(graph, frontier)
        frontier = np.unique(nbrs[~visited[nbrs]])
        visited[frontier] = True
        if (
            replica_mask is not None
            and first_hit < 0
            and frontier.size
            and replica_mask[frontier].any()
        ):
            first_hit = h
        if frontier.size == 0:
            break

    # --- Phase 2: epidemic push beyond the Convergence Boundary.
    gossip_msgs = 0
    active = frontier
    for r in range(1, gossip_rounds + 1):
        if active.size == 0:
            break
        degs = indptr[active + 1] - indptr[active]
        pushers = active[degs > 0]
        if pushers.size == 0:
            break
        k = min(fanout, int(degs.max()))
        # Each pusher picks `fanout` random neighbors with replacement.
        picks = (
            rng.random((pushers.size, k)) * (indptr[pushers + 1] - indptr[pushers])[:, None]
        ).astype(np.int64)
        targets = indices[indptr[pushers][:, None] + picks].reshape(-1)
        gossip_msgs += targets.size
        active = np.unique(targets[~visited[targets]])
        visited[active] = True
        if (
            replica_mask is not None
            and first_hit < 0
            and active.size
            and replica_mask[active].any()
        ):
            first_hit = flood_ttl + r

    return GossipSearchResult(
        source=source,
        flood_ttl=flood_ttl,
        gossip_rounds=gossip_rounds,
        fanout=fanout,
        flood_messages=flood_msgs,
        gossip_messages=gossip_msgs,
        first_hit_hop=first_hit,
        nodes_visited=int(visited.sum()),
    )
