"""Bit-packed Bloom filters, vectorized over many filters at once.

"A Bloom filter is a compact representation of a large set of objects that
allows one to easily test whether a given object is a member of that set"
[Bloom 1970].  The simulator keeps one filter per (node, level) as a row of
``uint64`` words, so inserting into or querying across a hundred thousand
filters is plain array arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.hashing import bloom_bit_positions


@dataclass(frozen=True)
class BloomParams:
    """Size and hash count of a Bloom filter.

    The defaults (2048 bits, 4 hashes) keep the false-positive rate below
    ~1% for the few hundred keys a deep attenuated level aggregates; the
    memory cost at 100k nodes and depth 3 is ~77 MB.
    """

    n_bits: int = 2048
    n_hashes: int = 4

    def __post_init__(self):
        if self.n_bits < 64 or self.n_bits % 64 != 0:
            raise ValueError(
                f"n_bits must be a positive multiple of 64, got {self.n_bits}"
            )
        if self.n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {self.n_hashes}")

    @property
    def n_words(self) -> int:
        """uint64 words per filter."""
        return self.n_bits // 64

    def false_positive_rate(self, n_items: int) -> float:
        """Expected FP rate after inserting ``n_items`` keys."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        k, m = self.n_hashes, self.n_bits
        return float((1.0 - np.exp(-k * n_items / m)) ** k)


def make_filters(n_filters: int, params: BloomParams) -> np.ndarray:
    """Allocate ``n_filters`` empty filters as an ``(n, words)`` array."""
    if n_filters < 0:
        raise ValueError(f"n_filters must be >= 0, got {n_filters}")
    return np.zeros((n_filters, params.n_words), dtype=np.uint64)


def key_positions(keys: np.ndarray | int, params: BloomParams) -> tuple[np.ndarray, np.ndarray]:
    """(word index, bit mask) pairs a key sets, vectorized over keys.

    Returns ``(words, masks)`` of shape ``(n_keys, n_hashes)``.
    """
    pos = bloom_bit_positions(keys, params.n_hashes, params.n_bits)
    words = pos >> 6
    masks = (np.uint64(1) << (pos & 63).astype(np.uint64)).astype(np.uint64)
    return words, masks


def insert_keys(
    filters: np.ndarray, rows: np.ndarray, keys: np.ndarray, params: BloomParams
) -> None:
    """Insert ``keys[i]`` into filter row ``rows[i]`` (in place, vectorized)."""
    rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
    keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
    if rows.shape != keys.shape:
        raise ValueError("rows and keys must be aligned")
    if rows.size == 0:
        return
    words, masks = key_positions(keys, params)
    row_rep = np.repeat(rows, params.n_hashes)
    np.bitwise_or.at(filters, (row_rep, words.reshape(-1)), masks.reshape(-1))


def contains_key(
    filters: np.ndarray, rows: np.ndarray, key: int, params: BloomParams
) -> np.ndarray:
    """Membership test of one key against many filter rows.

    Returns a boolean array aligned with ``rows`` (True = possibly present).
    """
    rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
    words, masks = key_positions(np.asarray([key]), params)
    probe = filters[rows][:, words[0]]  # (n_rows, n_hashes)
    return np.all((probe & masks[0]) == masks[0], axis=1)


def fill_ratio(filters: np.ndarray, params: BloomParams) -> np.ndarray:
    """Fraction of set bits per filter row (a saturation diagnostic)."""
    counts = np.zeros(filters.shape[0], dtype=np.int64)
    # Popcount via uint8 view and a 256-entry table.
    table = np.asarray([bin(i).count("1") for i in range(256)], dtype=np.int64)
    bytes_view = filters.view(np.uint8).reshape(filters.shape[0], -1)
    counts = table[bytes_view].sum(axis=1)
    return counts / params.n_bits
