"""Object placement under a replication ratio (paper Section 4.1).

"Replication ratio represents the percentage of nodes that contain a
replica for a given object.  Additionally, the nodes that contain a replica
for a given object were chosen uniformly at random."  A query succeeds when
at least one replica is located.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.content.placement import ContentPlacement


@dataclass(frozen=True)
class Placement:
    """Uniform-random replica placement of a set of objects.

    Attributes
    ----------
    n_nodes:
        Size of the overlay the objects live on.
    object_keys:
        ``(n_objects,)`` distinct int64 keys identifying the objects (these
        are the keys hashed into Bloom filters for identifier search).
    replica_nodes:
        Flat array of holder node ids, grouped per object.
    replica_indptr:
        ``(n_objects + 1,)`` offsets into ``replica_nodes``.
    """

    n_nodes: int
    object_keys: np.ndarray
    replica_nodes: np.ndarray
    replica_indptr: np.ndarray

    @property
    def n_objects(self) -> int:
        """Number of distinct objects."""
        return self.object_keys.size

    @property
    def replicas_per_object(self) -> np.ndarray:
        """Replica count of each object."""
        return np.diff(self.replica_indptr)

    def replicas(self, obj: int) -> np.ndarray:
        """Sorted holder node ids of object index ``obj``."""
        if not 0 <= obj < self.n_objects:
            raise IndexError(f"object index {obj} out of range")
        return self.replica_nodes[self.replica_indptr[obj] : self.replica_indptr[obj + 1]]

    def holder_mask(self, obj: int) -> np.ndarray:
        """Boolean per-node mask of holders of object index ``obj``."""
        mask = np.zeros(self.n_nodes, dtype=bool)
        mask[self.replicas(obj)] = True
        return mask

    def key_of(self, obj: int) -> int:
        """Bloom key of object index ``obj``."""
        return int(self.object_keys[obj])

    def node_store(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node content as CSR ``(indptr, keys)``.

        ``keys[indptr[u]:indptr[u+1]]`` are the object keys stored at node
        ``u`` — the input to attenuated-Bloom-filter construction.
        """
        owners = self.replica_nodes
        keys = np.repeat(self.object_keys, self.replicas_per_object)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        sorted_keys = keys[order]
        indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, sorted_owners + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, sorted_keys


def replica_count(n_nodes: int, replication_ratio: float, minimum: int = 1) -> int:
    """Replicas implied by a ratio, floored at ``minimum`` (>= 1 holder)."""
    check_fraction("replication_ratio", replication_ratio)
    return max(minimum, int(round(replication_ratio * n_nodes)))


def replication_factor(
    n_nodes: Optional[int] = None,
    replication_ratio: Optional[float] = None,
    *,
    placement: Optional["ContentPlacement"] = None,
    minimum: int = 1,
) -> int:
    """Replicas per object — legacy scalar path, or derived from placement.

    The scalar path (``n_nodes`` + ``replication_ratio``) is the paper's
    Section 4.1 uniform assumption and delegates to :func:`replica_count`
    unchanged (bit-identical to the historical behaviour).  When a
    :class:`repro.content.placement.ContentPlacement` is supplied, the
    figure derives from the *real* replica map the content plane produced
    — ``round(mean replicas per object)`` — so search experiments driven
    by actual placements stop assuming uniformity.  The matching ratio is
    ``placement.effective_replication_ratio``.
    """
    if placement is not None:
        if n_nodes is not None or replication_ratio is not None:
            raise ValueError(
                "pass either a placement or (n_nodes, replication_ratio), "
                "not both"
            )
        return max(minimum, int(round(placement.mean_replicas)))
    if n_nodes is None or replication_ratio is None:
        raise ValueError(
            "n_nodes and replication_ratio are required without a placement"
        )
    return replica_count(n_nodes, replication_ratio, minimum=minimum)


def place_objects(
    n_nodes: int,
    n_objects: int,
    replication_ratio: float,
    seed: SeedLike = None,
    keys: Optional[np.ndarray] = None,
) -> Placement:
    """Place ``n_objects`` objects uniformly at random at the given ratio.

    Every object receives ``max(1, round(ratio * n_nodes))`` replicas on
    distinct nodes chosen independently per object.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects}")
    rng = as_generator(seed)
    r = replica_count(n_nodes, replication_ratio)

    if keys is None:
        keys = _distinct_keys(rng, n_objects)
    else:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape != (n_objects,):
            raise ValueError("keys must have one entry per object")
        if np.unique(keys).size != n_objects:
            raise ValueError("object keys must be distinct")

    holders = np.empty((n_objects, r), dtype=np.int64)
    for i in range(n_objects):
        holders[i] = np.sort(rng.choice(n_nodes, size=r, replace=False))
    indptr = np.arange(0, (n_objects + 1) * r, r, dtype=np.int64)
    return Placement(
        n_nodes=n_nodes,
        object_keys=keys,
        replica_nodes=holders.reshape(-1),
        replica_indptr=indptr,
    )


def place_single_object(
    n_nodes: int,
    n_replicas: int,
    seed: SeedLike = None,
    key: int = 1,
) -> Placement:
    """Place exactly one object on ``n_replicas`` random distinct nodes.

    Used by the Table 2 validation ("a worst case scenario where each
    object existed on only 1 node").
    """
    if not 1 <= n_replicas <= n_nodes:
        raise ValueError(f"n_replicas must be in [1, {n_nodes}], got {n_replicas}")
    rng = as_generator(seed)
    holders = np.sort(rng.choice(n_nodes, size=n_replicas, replace=False))
    return Placement(
        n_nodes=n_nodes,
        object_keys=np.asarray([key], dtype=np.int64),
        replica_nodes=holders,
        replica_indptr=np.asarray([0, n_replicas], dtype=np.int64),
    )


def _distinct_keys(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` distinct positive int64 keys."""
    keys = rng.integers(1, 2**62, size=n, dtype=np.int64)
    while np.unique(keys).size != n:  # pragma: no cover - astronomically rare
        keys = rng.integers(1, 2**62, size=n, dtype=np.int64)
    return keys
