"""Latency-aware flooding: response-time analysis.

The hop-based kernels count messages; this module models *when* results
arrive.  A flooded query departs the source at time 0 and traverses each
overlay link in that link's physical latency; a node processes the first
copy it receives and forwards immediately (processing and queueing are
assumed negligible — the paper's Section 6 discussion attributes Gnutella's
slow responses to queueing at overloaded peers, which Makalu's
capacity-respecting degrees avoid by construction).  A result travels back
to the source along the reverse of its discovery path, so the response
time of a replica is twice its arrival time.

The earliest arrival under a TTL is a hop-constrained shortest path,
computed with ``ttl`` rounds of vectorized Bellman-Ford relaxation over
the CSR edge list — O(ttl * E) with no per-node Python work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.segments import segment_counts
from repro.util.validation import check_node_id


def flood_arrival_times(
    graph: OverlayGraph, source: int, ttl: int
) -> np.ndarray:
    """Earliest query-arrival time at every node within ``ttl`` hops.

    Entry ``v`` is the minimum, over paths of at most ``ttl`` hops, of the
    path's total link latency; ``inf`` for nodes the flood cannot reach.
    The source itself is 0.
    """
    check_node_id("source", source, graph.n_nodes)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")

    src = np.repeat(
        np.arange(graph.n_nodes, dtype=np.int64), segment_counts(graph.indptr)
    )
    dst = graph.indices
    w = graph.latency

    arrival = np.full(graph.n_nodes, np.inf)
    arrival[source] = 0.0
    for _ in range(ttl):
        candidate = arrival[src] + w
        improved = np.full(graph.n_nodes, np.inf)
        np.minimum.at(improved, dst, candidate)
        new = np.minimum(arrival, improved)
        if np.array_equal(
            new, arrival, equal_nan=True
        ):  # converged before the TTL
            break
        arrival = new
    return arrival


@dataclass(frozen=True)
class ResponseTimeResult:
    """Timing of one flooded query."""

    source: int
    ttl: int
    first_result_time: float  # inf when no replica is reachable
    results_within_ttl: int
    arrival_of_nearest: float

    @property
    def success(self) -> bool:
        """Whether any replica was reached within the TTL."""
        return np.isfinite(self.first_result_time)


def time_to_first_result(
    graph: OverlayGraph,
    source: int,
    ttl: int,
    replica_mask: np.ndarray,
    round_trip: bool = True,
) -> ResponseTimeResult:
    """Response time of a flooded query for an object.

    ``round_trip`` doubles the arrival time to account for the QueryHit
    traveling back along the reverse path (the v0.4 result-routing rule).
    """
    if replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    arrival = flood_arrival_times(graph, source, ttl)
    holder_times = arrival[replica_mask]
    reachable = holder_times[np.isfinite(holder_times)]
    nearest = float(reachable.min()) if reachable.size else float("inf")
    factor = 2.0 if round_trip else 1.0
    return ResponseTimeResult(
        source=source,
        ttl=ttl,
        first_result_time=nearest * factor if np.isfinite(nearest) else float("inf"),
        results_within_ttl=int(reachable.size),
        arrival_of_nearest=nearest,
    )


def response_time_distribution(
    graph: OverlayGraph,
    placement: Placement,
    n_queries: int,
    ttl: int,
    seed: SeedLike = None,
    round_trip: bool = True,
) -> np.ndarray:
    """Response times of a batch of queries (inf entries = unresolved).

    Use ``numpy.isfinite`` to split successes from failures and
    ``numpy.percentile`` on the finite part for the latency distribution.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if placement.n_nodes != graph.n_nodes:
        raise ValueError("placement and graph node counts disagree")
    rng = as_generator(seed)
    sources = rng.integers(0, graph.n_nodes, size=n_queries)
    objects = rng.integers(0, placement.n_objects, size=n_queries)
    out = np.empty(n_queries)
    for i, (src, obj) in enumerate(zip(sources, objects)):
        res = time_to_first_result(
            graph, int(src), ttl, placement.holder_mask(int(obj)),
            round_trip=round_trip,
        )
        out[i] = res.first_result_time
    return out
