"""Query Routing Protocol (QRP) tables for the two-tier overlay.

In Gnutella v0.6, each leaf summarizes its shared content into a *query
routing table* — a hashed digest — and uploads it to its ultrapeers; an
ultrapeer forwards a query to a leaf only if the query's keywords hash
into the leaf's table.  This shields leaves from almost all query traffic
(the architectural goal of the two-tier design) at the cost of occasional
false-positive deliveries.

Real QRP uses a hash-table of keyword hashes; content here is identified
by integer keys, so the digest is a Bloom filter over the leaf's keys —
the same accuracy/size trade-off, built from :mod:`repro.search.bloom`.
Ultrapeers also keep the OR of their leaves' tables (the "last-hop"
aggregate) to decide whether forwarding to *any* leaf is worthwhile.

Using :class:`QrpTables` with
:class:`~repro.search.twotier_flood.TwoTierSearch` makes leaf-delivery
false positives *emergent* (from digest saturation) instead of the
parameterized ``qrp_false_positive`` rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.search.bloom import BloomParams, contains_key, insert_keys, make_filters
from repro.search.replication import Placement
from repro.topology.twotier import TwoTierTopology


@dataclass(frozen=True)
class QrpTables:
    """Per-node QRP digests over a two-tier overlay.

    ``tables`` has one Bloom-filter row per overlay node: a leaf's row
    digests its own keys; an ultrapeer's row is the OR of its leaves' rows
    *plus its own content* (ultrapeers share files too).
    """

    params: BloomParams
    tables: np.ndarray  # (n_nodes, n_words) uint64

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered."""
        return self.tables.shape[0]

    def matches(self, nodes: np.ndarray, key: int) -> np.ndarray:
        """Digest test: may each of ``nodes`` hold ``key``?"""
        return contains_key(self.tables, np.asarray(nodes, dtype=np.int64),
                            key, self.params)

    def false_positive_estimate(self, node: int) -> float:
        """Expected FP rate of one node's digest given its fill."""
        from repro.search.bloom import fill_ratio

        fill = float(fill_ratio(self.tables[[node]], self.params)[0])
        # Invert fill ~ 1 - exp(-k n / m) to an item-count estimate, then
        # reuse the standard formula.
        if fill >= 1.0:
            return 1.0
        k, m = self.params.n_hashes, self.params.n_bits
        n_items = -m / k * np.log(1.0 - fill)
        return self.params.false_positive_rate(int(round(n_items)))


def build_qrp_tables(
    topo: TwoTierTopology,
    placement: Placement,
    params: Optional[BloomParams] = None,
) -> QrpTables:
    """Build QRP digests for every node of a two-tier overlay.

    Leaves digest their own content; each ultrapeer's table is the OR of
    its attached leaves' tables and its own content digest (the aggregate
    it advertises to other ultrapeers as a last-hop filter).
    """
    graph = topo.graph
    if placement.n_nodes != graph.n_nodes:
        raise ValueError("placement and topology node counts disagree")
    params = params or BloomParams(n_bits=1024, n_hashes=2)

    tables = make_filters(graph.n_nodes, params)
    store_indptr, store_keys = placement.node_store()
    owners = np.repeat(
        np.arange(graph.n_nodes, dtype=np.int64), np.diff(store_indptr)
    )
    insert_keys(tables, owners, store_keys, params)

    # Aggregate leaves into their ultrapeers (one vectorized pass over the
    # leaf->ultrapeer directed entries).
    src = np.repeat(
        np.arange(graph.n_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    attach = (~topo.is_ultrapeer[src]) & topo.is_ultrapeer[graph.indices]
    leaf_rows = src[attach]
    up_rows = graph.indices[attach]
    # In-place OR of each leaf's table into its parents' tables.  Fancy
    # indexing materializes the leaf rows first, and leaves are never
    # ultrapeers, so there is no read/write aliasing.
    np.bitwise_or.at(tables, up_rows, tables[leaf_rows])
    return QrpTables(params=params, tables=tables)
