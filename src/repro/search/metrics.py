"""Search-result aggregation shared by every search mechanism.

Each mechanism produces per-query records (messages sent, hop at which the
first replica was located, success); these helpers turn batches of those
records into the statistics the paper's tables and figures report.

**Failure-hop convention.**  ``first_hit_hop == -1`` is a *sentinel*
meaning the query failed, not a hop count.  Every aggregate here excludes
failures from hop statistics (``mean_hops_to_hit`` averages successful
queries only); code combining results across shards or seeds must do the
same — averaging raw ``first_hit_hop`` values silently treats each failure
as "found at hop -1" and biases the mean downward.  Use
:meth:`SearchSummary.merge` (or re-summarize the concatenated records),
never a plain mean of per-shard means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class QueryRecord:
    """Outcome of one query.

    ``first_hit_hop`` is the hop (or message count, for hop-per-message
    mechanisms) at which the first replica was located; the sentinel -1
    means the query failed and must be excluded from hop averages (see the
    module docstring).  ``messages`` is the total messages the query
    generated.
    """

    source: int
    messages: int
    first_hit_hop: int

    @property
    def success(self) -> bool:
        """Whether at least one replica was located."""
        return self.first_hit_hop >= 0


@dataclass(frozen=True)
class SearchSummary:
    """Aggregate statistics over a batch of queries.

    ``mean_hops_to_hit`` averages *successful* queries only (NaN when the
    batch had no successes); failed queries' ``first_hit_hop == -1``
    sentinels never enter it.

    ``n_successes`` and ``total_messages`` are stored as exact integers —
    the rates/means are derived views of them, never the other way around.
    (They used to be reconstructed as ``round(rate * n)``, which drifts
    once merged summaries are merged again; carrying the counts keeps
    :meth:`merge` exact at any nesting depth.)  Both default to ``None``
    for backward compatibility, in which case they are recovered by
    rounding — exact only for a summary that has never been merged.

    ``mechanism`` tags which search mechanism produced the batch (e.g.
    ``"flooding"`` or ``"abf-identifier"``).  It is optional metadata, but
    :meth:`merge` refuses to combine summaries tagged with *different*
    mechanisms — their message/hop statistics are not comparable, and the
    mismatch used to surface only much later as a confusing downstream
    error.
    """

    n_queries: int
    success_rate: float
    mean_messages: float
    mean_hops_to_hit: float  # over successful queries only; nan if none
    p95_messages: float
    n_successes: int = None  # type: ignore[assignment]
    total_messages: int = None  # type: ignore[assignment]
    mechanism: Optional[str] = None

    def __post_init__(self):
        if self.n_successes is None:
            object.__setattr__(
                self, "n_successes", int(round(self.success_rate * self.n_queries))
            )
        if self.total_messages is None:
            object.__setattr__(
                self, "total_messages", int(round(self.mean_messages * self.n_queries))
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_queries} queries: success {100 * self.success_rate:.1f}%, "
            f"mean msgs {self.mean_messages:.1f}, mean hit hop "
            f"{self.mean_hops_to_hit:.2f}, p95 msgs {self.p95_messages:.0f}"
        )

    @staticmethod
    def merge(summaries: Sequence["SearchSummary"]) -> "SearchSummary":
        """Combine per-shard/per-seed batches into one summary.

        Query, success and message *counts* add exactly, so success rate
        and message means recombine exactly (weighted by query count) no
        matter how deeply merged summaries are re-merged.
        ``mean_hops_to_hit`` recombines exactly over the *successful*
        queries of every batch — a batch with zero successes (NaN hops)
        contributes nothing rather than poisoning the mean, and failures
        are never averaged in as hop -1.  ``p95_messages`` cannot be
        reconstructed exactly from aggregates; it is approximated by the
        query-count-weighted mean of the per-batch p95s (re-summarize the
        concatenated records when an exact percentile matters).

        Raises :class:`ValueError` when the summaries carry conflicting
        ``mechanism`` tags — cross-mechanism statistics are meaningless.
        Untagged summaries (``mechanism=None``) merge with anything; the
        merged summary keeps the common tag if there is one.
        """
        if not summaries:
            raise ValueError("cannot merge zero summaries")
        mechanisms = {s.mechanism for s in summaries if s.mechanism is not None}
        if len(mechanisms) > 1:
            a, b, *_ = sorted(mechanisms)
            raise ValueError(
                f"cannot merge summaries from different search mechanisms: "
                f"{a!r} vs {b!r}"
            )
        n = sum(s.n_queries for s in summaries)
        successes = sum(s.n_successes for s in summaries)
        total_messages = sum(s.total_messages for s in summaries)
        hop_total = sum(
            s.mean_hops_to_hit * s.n_successes
            for s in summaries if s.n_successes
        )
        return SearchSummary(
            n_queries=n,
            success_rate=successes / n,
            mean_messages=total_messages / n,
            mean_hops_to_hit=hop_total / successes if successes else float("nan"),
            p95_messages=sum(s.p95_messages * s.n_queries for s in summaries) / n,
            n_successes=successes,
            total_messages=total_messages,
            mechanism=next(iter(mechanisms)) if mechanisms else None,
        )


def summarize(
    records: Sequence[QueryRecord], mechanism: Optional[str] = None
) -> SearchSummary:
    """Aggregate a batch of per-query records.

    Failed queries (``first_hit_hop == -1``) count toward ``n_queries``,
    ``success_rate`` and the message statistics but are excluded from
    ``mean_hops_to_hit``.  ``mechanism`` optionally tags the summary with
    the producing search mechanism; :meth:`SearchSummary.merge` refuses
    cross-mechanism merges.
    """
    if not records:
        raise ValueError("cannot summarize zero queries")
    messages = np.asarray([r.messages for r in records], dtype=np.int64)
    hits = np.asarray([r.first_hit_hop for r in records], dtype=np.float64)
    success = hits >= 0
    n_successes = int(np.count_nonzero(success))
    total_messages = int(messages.sum())
    return SearchSummary(
        n_queries=len(records),
        success_rate=n_successes / len(records),
        mean_messages=total_messages / len(records),
        mean_hops_to_hit=float(hits[success].mean()) if success.any() else float("nan"),
        p95_messages=float(np.percentile(messages, 95)),
        n_successes=n_successes,
        total_messages=total_messages,
        mechanism=mechanism,
    )


def success_vs_ttl(first_hit_hops: np.ndarray, max_ttl: int) -> np.ndarray:
    """Success-rate curve: entry ``t`` = fraction of queries resolved with
    first hit at hop <= t, for t = 0..max_ttl.

    One deep search per query yields the whole TTL sweep — the curves of
    Figures 3 and 4 come from this transform.
    """
    hops = np.asarray(first_hit_hops, dtype=np.int64)
    if max_ttl < 0:
        raise ValueError(f"max_ttl must be >= 0, got {max_ttl}")
    ttls = np.arange(max_ttl + 1)
    resolved = (hops[None, :] >= 0) & (hops[None, :] <= ttls[:, None])
    return resolved.mean(axis=1)


def min_ttl_for_success(
    first_hit_hops: np.ndarray, target: float = 0.95, max_ttl: int = 64
) -> int:
    """Smallest TTL resolving at least ``target`` of the queries, or -1.

    This is the "Min TTL" column of Table 1: the paper "used a TTL for
    floods that ... allow for floods to resolve most (> 95%) of the
    queries".
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must be in (0, 1], got {target}")
    curve = success_vs_ttl(first_hit_hops, max_ttl)
    qualifying = np.flatnonzero(curve >= target)
    return int(qualifying[0]) if qualifying.size else -1
