"""Random-walk search baselines (paper Section 6 related work).

Two walk strategies the paper positions Makalu against:

* **k-walker uniform random walk** [Lv et al. 2002] — ``n_walkers`` walkers
  step independently; each step costs one message; walkers avoid stepping
  straight back to their previous node when an alternative exists.
* **High-degree-biased walk** [Adamic et al. 2001] — each step samples two
  neighbor candidates and takes the higher-degree one ("searches being
  routed to the highly connected nodes").  The power-of-two-choices
  approximation keeps the kernel vectorized across walkers while
  reproducing the hub-seeking behaviour.

Walkers share the success signal: the batch stops at the end of the step in
which any walker lands on a replica (modeling the walkers' periodic
check-back with the query source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.obs import runtime as _obs
from repro.search.metrics import QueryRecord
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id

WalkBias = Literal["uniform", "degree"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one k-walker search."""

    source: int
    n_walkers: int
    messages: int
    hit_step: int  # step index at which a walker found a replica, -1 if none

    @property
    def success(self) -> bool:
        """Whether any walker located a replica."""
        return self.hit_step >= 0

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record."""
        return QueryRecord(
            source=self.source,
            messages=self.messages,
            first_hit_hop=self.hit_step,
        )


def random_walk_search(
    graph: OverlayGraph,
    source: int,
    replica_mask: np.ndarray,
    n_walkers: int = 16,
    max_steps: int = 128,
    bias: WalkBias = "uniform",
    seed: SeedLike = None,
) -> WalkResult:
    """Run a k-walker search from ``source``.

    Each step of each live walker costs one message.  Walkers start at the
    source's neighbors' side: step 1 moves them off the source.
    """
    check_node_id("source", source, graph.n_nodes)
    if replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    if n_walkers < 1:
        raise ValueError(f"n_walkers must be >= 1, got {n_walkers}")
    if max_steps < 0:
        raise ValueError(f"max_steps must be >= 0, got {max_steps}")
    if bias not in ("uniform", "degree"):
        raise ValueError(f"unknown bias {bias!r}")
    rng = as_generator(seed)

    if replica_mask[source]:
        _record_walk(_obs.active(), _obs.tracing_active(), source, 0, 0)
        return WalkResult(source=source, n_walkers=n_walkers, messages=0, hit_step=0)
    if graph.neighbors(source).size == 0:
        _record_walk(_obs.active(), _obs.tracing_active(), source, 0, -1)
        return WalkResult(source=source, n_walkers=n_walkers, messages=0, hit_step=-1)

    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees

    pos = np.full(n_walkers, source, dtype=np.int64)
    prev = np.full(n_walkers, -1, dtype=np.int64)
    messages = 0

    session = _obs.active()
    tracer = session.tracer if session is not None else None

    for step in range(1, max_steps + 1):
        degs = degrees[pos]
        # One candidate per walker...
        r1 = (rng.random(n_walkers) * degs).astype(np.int64)
        cand1 = indices[indptr[pos] + r1]
        if bias == "degree":
            # ...two candidates; keep the higher-degree one.
            r2 = (rng.random(n_walkers) * degs).astype(np.int64)
            cand2 = indices[indptr[pos] + r2]
            nxt = np.where(degrees[cand2] > degrees[cand1], cand2, cand1)
        else:
            nxt = cand1
        # Never trivially bounce back when another neighbor exists: resample
        # uniformly over the neighbor list minus the previous node.  Bouncers
        # are few (expected n_walkers / degree), so the exact exclusion runs
        # as a short Python loop.
        bounce = np.flatnonzero((nxt == prev) & (degs > 1))
        if bounce.size:
            nxt = nxt.copy()
            for w in bounce:
                start = indptr[pos[w]]
                deg = degs[w]
                slot = int(rng.integers(0, deg - 1))
                prev_idx = int(
                    np.searchsorted(indices[start : start + deg], prev[w])
                )
                if slot >= prev_idx:
                    slot += 1
                nxt[w] = indices[start + slot]

        prev = pos
        pos = nxt
        messages += n_walkers
        if tracer is not None:
            tracer.emit(
                "walk.step", source=source, step=step, walkers=n_walkers,
            )
        if replica_mask[pos].any():
            _record_walk(session, tracer, source, messages, step)
            return WalkResult(
                source=source, n_walkers=n_walkers, messages=messages, hit_step=step
            )
    _record_walk(session, tracer, source, messages, -1)
    return WalkResult(
        source=source, n_walkers=n_walkers, messages=messages, hit_step=-1
    )


def _record_walk(session, tracer, source, messages, hit_step) -> None:
    """Final per-walk metrics/trace (no-op when observability is off)."""
    if session is None:
        return
    reg = session.metrics
    reg.counter("search.walk.queries").inc()
    reg.counter("search.walk.messages_sent").inc(messages)
    reg.histogram("search.walk.messages_per_query").observe(float(messages))
    if tracer is not None:
        tracer.emit(
            "walk.query", source=source, messages=messages, hit_step=hit_step,
        )
