"""Gnutella v0.6 query routing over a two-tier overlay (paper Section 4.2).

The paper floods the v0.6 topology with "a modified flooding algorithm that
simulates the behavior of current Gnutella query routing".  Modern Gnutella
routing has three relevant behaviours, all modeled here:

* **Leaf shielding** — a leaf sends its query to its ultrapeers and takes no
  further part in routing.
* **Query Routing Protocol (QRP)** — ultrapeers hold their leaves' content
  digests and deliver a query only to leaves whose digest matches, so leaf
  deliveries cost one message per *matching* leaf (plus an optional digest
  false-positive rate).
* **Dynamic querying** — the query spreads hop by hop across the ultrapeer
  mesh and *stops as soon as enough results have been located*.  This is why
  v0.6 looks cheap at high replication ratios yet explodes at low ones
  (Table 1's crossover).

Messages counted: leaf -> ultrapeer submissions, ultrapeer mesh forwards
(with duplicate suppression, like plain flooding), and ultrapeer -> leaf
deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.search.metrics import QueryRecord
from repro.search.replication import Placement
from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.topology.twotier import TwoTierTopology
from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.validation import check_node_id, check_probability


@dataclass(frozen=True)
class TwoTierFloodResult:
    """Accounting of one v0.6 query."""

    source: int
    ttl: int
    mesh_messages: int
    leaf_messages: int
    first_hit_hop: int
    replicas_found: int
    hops_used: int
    messages_lost: int = 0

    @property
    def total_messages(self) -> int:
        """All messages: submissions + mesh forwards + leaf deliveries."""
        return self.mesh_messages + self.leaf_messages

    @property
    def success(self) -> bool:
        """Whether at least one replica was located."""
        return self.first_hit_hop >= 0

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record."""
        return QueryRecord(
            source=self.source,
            messages=self.total_messages,
            first_hit_hop=self.first_hit_hop,
        )


class TwoTierSearch:
    """Reusable v0.6 query router for one two-tier topology.

    Precomputes the ultrapeer mesh subgraph and each ultrapeer's leaf list
    so per-query work is a vectorized mesh flood.
    """

    def __init__(self, topo: TwoTierTopology):
        self.topo = topo
        graph = topo.graph
        self._mesh, self._mesh_to_node = graph.subgraph(topo.is_ultrapeer)
        node_to_mesh = -np.ones(graph.n_nodes, dtype=np.int64)
        node_to_mesh[self._mesh_to_node] = np.arange(self._mesh_to_node.size)
        self._node_to_mesh = node_to_mesh

        # CSR of leaves per ultrapeer (in mesh ids), built from the edge
        # list in one vectorized pass: leaf->ultrapeer directed entries.
        is_up = topo.is_ultrapeer
        src = np.repeat(
            np.arange(graph.n_nodes, dtype=np.int64), np.diff(graph.indptr)
        )
        attach = (~is_up[src]) & is_up[graph.indices]
        owner = node_to_mesh[graph.indices[attach]]
        leaves = src[attach]
        order = np.argsort(owner, kind="stable")
        owner, leaves = owner[order], leaves[order]
        indptr = np.zeros(self._mesh.n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, owner + 1, 1)
        np.cumsum(indptr, out=indptr)
        self._leaf_indptr = indptr
        self._leaf_ids = leaves

    @property
    def mesh(self) -> OverlayGraph:
        """The ultrapeer-only subgraph (mesh ids)."""
        return self._mesh

    def leaves_of(self, mesh_id: int) -> np.ndarray:
        """Leaf node ids shielded by mesh node ``mesh_id``."""
        return self._leaf_ids[self._leaf_indptr[mesh_id] : self._leaf_indptr[mesh_id + 1]]

    def query(
        self,
        source: int,
        ttl: int,
        replica_mask: np.ndarray,
        results_target: int = 1,
        qrp_false_positive: float = 0.0,
        qrp=None,
        key: Optional[int] = None,
        seed: SeedLike = None,
        faults=None,
        query_key: int = 0,
    ) -> TwoTierFloodResult:
        """Route one query from ``source`` (leaf or ultrapeer).

        Parameters
        ----------
        ttl:
            Maximum ultrapeer-mesh hops (leaf -> ultrapeer submission does
            not consume TTL, matching Gnutella).
        results_target:
            Dynamic querying stops after the hop at which at least this
            many replicas have been located.
        qrp_false_positive:
            Probability that a non-matching leaf's QRP digest spuriously
            matches, costing a wasted delivery message.  Ignored when real
            ``qrp`` tables are supplied.
        qrp:
            Optional :class:`~repro.search.qrp.QrpTables`; when given,
            leaf-delivery decisions use the actual Bloom digests (emergent
            false positives) and ``key`` identifies the queried object.
        key:
            The queried object's key; required with ``qrp``.
        faults:
            Optional :class:`~repro.faults.link.LinkFaults`.  Loss applies
            to overlay *transit* messages — leaf -> ultrapeer submissions
            (hop coordinate 0) and ultrapeer mesh forwards (hop ``h``) —
            with counter-based decisions keyed on global node ids, so
            execution strategy never changes which messages drop.
            Ultrapeer -> leaf QRP deliveries are exempt: they model the
            shielded last-hop handoff, and dropping them would silently
            change hit accounting rather than routing.  Lost messages are
            still paid for in the message counts (bandwidth spent), and
            are also reported in ``messages_lost``.
        query_key:
            Identity of this query in the loss stream (global workload
            index when issued in batches).
        """
        graph = self.topo.graph
        check_node_id("source", source, graph.n_nodes)
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        if replica_mask.shape != (graph.n_nodes,):
            raise ValueError("replica_mask must have one entry per node")
        if results_target < 1:
            raise ValueError(f"results_target must be >= 1, got {results_target}")
        check_probability("qrp_false_positive", qrp_false_positive)
        if qrp is not None and key is None:
            raise ValueError("key is required when routing with real QRP tables")
        rng = as_generator(seed)
        lossy = faults is not None and faults.lossy

        mesh_msgs = 0
        leaf_msgs = 0
        lost = 0
        found = 0
        first_hit = -1

        # The querying node checks its own store before sending anything.
        if replica_mask[source]:
            found += 1
            first_hit = 0
            if found >= results_target:
                return TwoTierFloodResult(
                    source=source, ttl=ttl, mesh_messages=0,
                    leaf_messages=0, first_hit_hop=0,
                    replicas_found=found, hops_used=0,
                )

        if self.topo.is_ultrapeer[source]:
            # An ultrapeer source originates the query locally: no
            # transmission, nothing to lose.
            entry = self._node_to_mesh[[source]]
        else:
            parents = self.topo.leaf_parents(source)
            entry = self._node_to_mesh[parents]
            mesh_msgs += entry.size  # leaf -> ultrapeer submissions
            if lossy and parents.size:
                drop = faults.drop(
                    query_key, 0,
                    np.full(parents.size, source, dtype=np.int64), parents,
                )
                lost += int(np.count_nonzero(drop))
                entry = entry[~drop]

        visited = np.zeros(self._mesh.n_nodes, dtype=bool)
        frontier = np.unique(entry)
        visited[frontier] = True
        hops_used = 0
        # Leaf sources spend one hop reaching their ultrapeers; ultrapeer
        # sources start at hop 0.  Mesh-forward hops add on top.
        hop_base = 0 if self.topo.is_ultrapeer[source] else 1

        # The entry ultrapeers process the query themselves before any
        # mesh forwarding.
        found, first_hit, leaf_msgs = self._process_ups(
            frontier, replica_mask, qrp_false_positive, rng,
            found, first_hit, leaf_msgs, hop=hop_base, qrp=qrp, key=key,
        )

        indptr = self._mesh.indptr
        for h in range(1, ttl + 1):
            if found >= results_target or frontier.size == 0:
                break
            degs = indptr[frontier + 1] - indptr[frontier]
            # At h == 1 the forwarders' parent is outside the mesh (the
            # querying leaf) or absent (an ultrapeer source), so nothing is
            # excluded; afterwards each forwarder skips its mesh parent.
            sent = int(degs.sum()) - (0 if h == 1 else frontier.size)
            if sent <= 0:
                break
            mesh_msgs += sent
            hops_used = h
            nbrs, owner_pos = gather_neighbors(self._mesh, frontier)
            if lossy:
                # Drop decisions cover every gathered pair (the aggregate
                # parent exclusion in ``sent`` is orthogonal); coordinates
                # are global node ids so they match the overlay-wide loss
                # stream, not mesh-local numbering.
                drop = faults.drop(
                    query_key, h,
                    self._mesh_to_node[frontier[owner_pos]],
                    self._mesh_to_node[nbrs],
                )
                lost += int(np.count_nonzero(drop))
                nbrs = nbrs[~drop]
            fresh = nbrs[~visited[nbrs]]
            frontier = np.unique(fresh)
            visited[frontier] = True
            found, first_hit, leaf_msgs = self._process_ups(
                frontier, replica_mask, qrp_false_positive, rng,
                found, first_hit, leaf_msgs, hop=hop_base + h, qrp=qrp, key=key,
            )

        return TwoTierFloodResult(
            source=source,
            ttl=ttl,
            mesh_messages=mesh_msgs,
            leaf_messages=leaf_msgs,
            first_hit_hop=first_hit,
            replicas_found=found,
            hops_used=hops_used,
            messages_lost=lost,
        )

    def _process_ups(
        self,
        mesh_frontier: np.ndarray,
        replica_mask: np.ndarray,
        qrp_fp: float,
        rng: np.random.Generator,
        found: int,
        first_hit: int,
        leaf_msgs: int,
        hop: int,
        qrp=None,
        key: Optional[int] = None,
    ) -> tuple[int, int, int]:
        """Ultrapeers process the query: self-check plus QRP leaf delivery."""
        if mesh_frontier.size == 0:
            return found, first_hit, leaf_msgs
        up_nodes = self._mesh_to_node[mesh_frontier]
        up_hits = int(np.count_nonzero(replica_mask[up_nodes]))

        # Leaves of these ultrapeers, via the precomputed CSR.
        starts = self._leaf_indptr[mesh_frontier]
        counts = self._leaf_indptr[mesh_frontier + 1] - starts
        total = int(counts.sum())
        if total:
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            pos = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
            leaves = self._leaf_ids[pos]
            matching = replica_mask[leaves]
            if qrp is not None:
                # Real digests: deliver to every digest match; holders are
                # always matches (no Bloom false negatives), extras are the
                # emergent false positives.
                delivered = qrp.matches(leaves, key)
                deliveries = int(np.count_nonzero(delivered))
            else:
                deliveries = int(np.count_nonzero(matching))
                if qrp_fp > 0.0:
                    misses = total - deliveries
                    deliveries += int(rng.binomial(misses, qrp_fp)) if misses else 0
            leaf_msgs += deliveries
            leaf_hits = int(np.count_nonzero(matching))
        else:
            leaf_hits = 0

        if (up_hits or leaf_hits) and first_hit < 0:
            first_hit = hop
        return found + up_hits + leaf_hits, first_hit, leaf_msgs


def _run_two_tier_shard(payload) -> list[TwoTierFloodResult]:
    """One worker's slice of a v0.6 workload (module-level: picklable)."""
    (search, placement, sources, objects, ttl, results_target, rngs,
     faults, keys) = payload
    results = []
    for src, obj, rng, qkey in zip(sources, objects, rngs, keys):
        mask = placement.holder_mask(int(obj))
        results.append(
            search.query(
                int(src), ttl, mask, results_target=results_target, seed=rng,
                faults=faults, query_key=int(qkey),
            )
        )
    return results


def two_tier_queries(
    search: TwoTierSearch,
    placement: Placement,
    n_queries: int,
    ttl: int,
    results_target: int = 1,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
    n_workers: int = 1,
    faults=None,
) -> list[TwoTierFloodResult]:
    """Issue a batch of v0.6 queries for random objects of a placement.

    Each query routes with its own child generator spawned from the seed,
    so ``n_workers > 1`` (sharding across processes via
    :func:`repro.parallel.map_shards`) returns bit-identical results in
    the same order as the serial loop.  With ``faults``, loss keys are the
    global workload indices, preserving that invariance.
    """
    graph = search.topo.graph
    if placement.n_nodes != graph.n_nodes:
        raise ValueError("placement and graph node counts disagree")
    rng = as_generator(seed)
    if sources is None:
        sources = rng.integers(0, graph.n_nodes, size=n_queries)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size != n_queries:
            raise ValueError("sources must have one entry per query")
    objects = rng.integers(0, placement.n_objects, size=n_queries)
    query_rngs = spawn_generators(rng, n_queries)
    query_keys = np.arange(n_queries, dtype=np.int64)
    if n_workers == 1:
        return _run_two_tier_shard(
            (search, placement, sources, objects, ttl, results_target,
             query_rngs, faults, query_keys)
        )

    from repro.parallel import map_shards
    from repro.parallel.runner import _shard_bounds

    payloads = [
        (search, placement, sources[a:b], objects[a:b], ttl, results_target,
         query_rngs[a:b], faults, query_keys[a:b])
        for a, b in _shard_bounds(n_queries, n_workers)
    ]
    return [
        r for shard in map_shards(_run_two_tier_shard, payloads, n_workers)
        for r in shard
    ]
