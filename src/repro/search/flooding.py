"""TTL-limited flooding search with duplicate-query suppression (Section 4.2).

Gnutella-style controlled flooding: the source sends the query to all of its
neighbors; every node seeing the query ID for the first time checks its
local store and, while TTL remains, forwards to all neighbors except the one
it received from.  Nodes cache query IDs, so duplicates are *dropped* (not
re-forwarded) but still *count as messages* — the paper's duplicate-message
percentages measure exactly this waste.

The kernel is frontier-vectorized: one BFS level per iteration, all message
arithmetic on whole frontier arrays.  A single deep flood records the hop at
which the first replica was found and per-hop message counts, from which
success-vs-TTL and messages-vs-TTL curves for *every* smaller TTL follow
without re-running (see :func:`repro.search.metrics.success_vs_ttl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.link import LinkFaults

from repro.obs import runtime as _obs
from repro.search.metrics import QueryRecord
from repro.search.replication import Placement
from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_node_id


@dataclass(frozen=True)
class FloodResult:
    """Full accounting of one flood.

    Per-hop arrays are indexed by hop ``h`` in ``1..ttl`` at position
    ``h-1``.  ``first_hit_hop`` is 0 when the source itself holds the
    object, -1 when no replica was reached within the TTL.
    """

    source: int
    ttl: int
    messages_per_hop: np.ndarray
    new_nodes_per_hop: np.ndarray
    duplicates_per_hop: np.ndarray
    first_hit_hop: int
    replicas_found: int
    #: Per-hop counts of messages lost in transit; ``None`` when the flood
    #: ran without an injected fault environment.
    dropped_per_hop: Optional[np.ndarray] = None

    @property
    def total_messages(self) -> int:
        """Messages generated over the whole flood."""
        return int(self.messages_per_hop.sum())

    @property
    def total_dropped(self) -> int:
        """Messages lost to injected faults (0 without fault injection)."""
        if self.dropped_per_hop is None:
            return 0
        return int(self.dropped_per_hop.sum())

    @property
    def nodes_visited(self) -> int:
        """Unique nodes that saw the query (including the source)."""
        return int(self.new_nodes_per_hop.sum()) + 1

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of messages that were duplicates."""
        total = self.total_messages
        return float(self.duplicates_per_hop.sum() / total) if total else 0.0

    @property
    def success(self) -> bool:
        """Whether at least one replica was located."""
        return self.first_hit_hop >= 0

    def messages_within_ttl(self, ttl: int) -> int:
        """Messages a flood truncated at ``ttl`` would have generated."""
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        return int(self.messages_per_hop[: min(ttl, self.ttl)].sum())

    def record(self) -> QueryRecord:
        """Collapse into the mechanism-independent per-query record."""
        return QueryRecord(
            source=self.source,
            messages=self.total_messages,
            first_hit_hop=self.first_hit_hop,
        )


def flood_node_load(
    graph: OverlayGraph, source: int, ttl: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node received-message counts and arrival hops of one flood.

    Returns ``(load, hops)``: ``load[v]`` is the number of messages node
    ``v`` *receives* — the per-peer traffic a capturing client observes,
    duplicates included (dropped, but the bandwidth is paid) — and
    ``hops[v]`` is the hop of first arrival (-1 if never reached; 0 at the
    source).  ``load.sum()`` equals the flood's total messages; nodes with
    ``0 < hops < ttl`` forwarded the query onward.
    """
    check_node_id("source", source, graph.n_nodes)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    visited = np.zeros(graph.n_nodes, dtype=bool)
    visited[source] = True
    hops = np.full(graph.n_nodes, -1, dtype=np.int64)
    hops[source] = 0
    load = np.zeros(graph.n_nodes, dtype=np.int64)
    frontier = np.asarray([source], dtype=np.int64)
    parents = np.asarray([-1], dtype=np.int64)
    for h in range(1, ttl + 1):
        nbrs, owner_pos = gather_neighbors(graph, frontier)
        if nbrs.size == 0:
            break
        # Exclude the one message each forwarder would have sent back to
        # its parent (the source has no parent).
        keep = nbrs != parents[owner_pos]
        receivers = nbrs[keep]
        senders = frontier[owner_pos[keep]]
        np.add.at(load, receivers, 1)
        fresh_mask = ~visited[receivers]
        fresh, first_idx = np.unique(receivers[fresh_mask], return_index=True)
        visited[fresh] = True
        hops[fresh] = h
        parents = senders[fresh_mask][first_idx]
        frontier = fresh
    return load, hops


def flood(
    graph: OverlayGraph,
    source: int,
    ttl: int,
    replica_mask: Optional[np.ndarray] = None,
    faults: Optional["LinkFaults"] = None,
    query_key: int = 0,
) -> FloodResult:
    """Run one duplicate-suppressed flood from ``source``.

    Parameters
    ----------
    ttl:
        Maximum hop distance the query travels (Gnutella TTL semantics).
    replica_mask:
        Optional boolean per-node holder mask; when given, the result
        reports the first hop at which a holder was reached and how many
        holders the flood visited in total.
    faults:
        Optional :class:`~repro.faults.link.LinkFaults` environment.  Each
        forwarded message is then dropped in transit with the configured
        loss rate; drop decisions are counter-based over
        ``(faults.seed, query_key, hop, sender, receiver)``, so the batch
        kernel and the parallel runner lose exactly the same messages.
        Lost messages still count as sent (the bandwidth is paid), but
        their receivers never see the query this hop.
    query_key:
        Identity of this query in the loss stream.  Callers issuing many
        queries must pass distinct keys (workload index) or every query
        sharing a seed would lose the same edges.
    """
    check_node_id("source", source, graph.n_nodes)
    if ttl < 0:
        raise ValueError(f"ttl must be >= 0, got {ttl}")
    if replica_mask is not None and replica_mask.shape != (graph.n_nodes,):
        raise ValueError("replica_mask must have one entry per node")
    lossy = faults is not None and faults.lossy

    indptr = graph.indptr
    visited = np.zeros(graph.n_nodes, dtype=bool)
    visited[source] = True

    messages = np.zeros(ttl, dtype=np.int64)
    new_nodes = np.zeros(ttl, dtype=np.int64)
    duplicates = np.zeros(ttl, dtype=np.int64)
    dropped = np.zeros(ttl, dtype=np.int64) if lossy else None

    first_hit = -1
    replicas_found = 0
    if replica_mask is not None and replica_mask[source]:
        first_hit = 0
        replicas_found = 1

    # Observability is hoisted out of the hop loop: one session lookup per
    # flood, one `is None` test per hop when disabled (<5% budget).
    session = _obs.active()
    tracer = session.tracer if session is not None else None

    frontier = np.asarray([source], dtype=np.int64)
    with _obs.span("search.flood"):
        for h in range(1, ttl + 1):
            degs = indptr[frontier + 1] - indptr[frontier]
            # Every frontier node forwards to all neighbors except its
            # parent; the source (hop 1) has no parent, sends to everyone.
            sent = int(degs.sum()) - (frontier.size if h > 1 else 0)
            if sent <= 0:
                break
            nbrs, owner_pos = gather_neighbors(graph, frontier)
            if lossy:
                # Loss is decided per transit message; receivers of dropped
                # messages never see the query this hop.  Sent counts are
                # unchanged — the bandwidth was spent either way.
                drop = faults.drop(query_key, h, frontier[owner_pos], nbrs)
                dropped[h - 1] = int(np.count_nonzero(drop))
                delivered = nbrs[~drop]
            else:
                delivered = nbrs
            fresh = delivered[~visited[delivered]]
            frontier = np.unique(fresh)
            visited[frontier] = True

            messages[h - 1] = sent
            new_nodes[h - 1] = frontier.size
            duplicates[h - 1] = sent - frontier.size
            if tracer is not None:
                if lossy:
                    tracer.emit(
                        "flood.hop", source=source, hop=h, sent=sent,
                        new=frontier.size, dup=sent - frontier.size,
                        lost=int(dropped[h - 1]),
                    )
                else:
                    tracer.emit(
                        "flood.hop", source=source, hop=h, sent=sent,
                        new=frontier.size, dup=sent - frontier.size,
                    )

            if replica_mask is not None and frontier.size:
                hits = int(np.count_nonzero(replica_mask[frontier]))
                if hits and first_hit < 0:
                    first_hit = h
                replicas_found += hits
            if frontier.size == 0:
                break

    if session is not None:
        reg = session.metrics
        reg.counter("search.flood.queries").inc()
        reg.counter("search.flood.messages_sent").inc(int(messages.sum()))
        reg.counter("search.flood.duplicates").inc(int(duplicates.sum()))
        if lossy:
            reg.counter("search.flood.messages_lost").inc(int(dropped.sum()))
        reg.histogram("search.flood.messages_per_query").observe(
            float(messages.sum())
        )
        if tracer is not None:
            tracer.emit(
                "flood.query", source=source, ttl=ttl,
                messages=int(messages.sum()), first_hit_hop=first_hit,
                replicas_found=replicas_found,
            )

    return FloodResult(
        source=source,
        ttl=ttl,
        messages_per_hop=messages,
        new_nodes_per_hop=new_nodes,
        duplicates_per_hop=duplicates,
        first_hit_hop=first_hit,
        replicas_found=replicas_found,
        dropped_per_hop=dropped,
    )


def draw_query_workload(
    graph: OverlayGraph,
    placement: Placement,
    n_queries: int,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw the ``(sources, objects)`` arrays of a query batch.

    This is the *only* RNG consumption of a flooding workload (floods
    themselves are deterministic), and it is shared by the scalar loop, the
    batched kernel and the process-parallel runner: all three see the same
    workload for the same seed, which is what makes their results
    bit-identical.  Sources are uniform random nodes unless given
    explicitly; each query targets a uniformly chosen object of the
    placement (the paper floods "for each unique object in the system from
    random nodes").
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if placement.n_nodes != graph.n_nodes:
        raise ValueError("placement and graph node counts disagree")
    rng = as_generator(seed)
    if sources is None:
        sources = rng.integers(0, graph.n_nodes, size=n_queries)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size != n_queries:
            raise ValueError("sources must have one entry per query")
    objects = rng.integers(0, placement.n_objects, size=n_queries)
    return np.asarray(sources, dtype=np.int64), objects


def flood_queries(
    graph: OverlayGraph,
    placement: Placement,
    n_queries: int,
    ttl: int,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    n_workers: int = 1,
    faults: Optional["LinkFaults"] = None,
) -> list[FloodResult]:
    """Issue ``n_queries`` flooding queries for random objects of a placement.

    Parameters
    ----------
    batch_size:
        When given, advance up to this many floods simultaneously through
        the vectorized :func:`repro.search.batch.flood_batch` kernel
        instead of one scalar flood per Python iteration.  Results are
        bit-identical either way; batching only changes wall time.
    n_workers:
        When > 1 (or 0, meaning one worker per CPU core), shard the
        batches across worker processes via
        :func:`repro.parallel.run_queries` (the overlay's CSR arrays are
        placed in shared memory, not pickled per worker).  Implies
        batching (default shard batch size when ``batch_size`` is None).

    Every path draws the workload identically (see
    :func:`draw_query_workload`), so the same seed produces the same
    per-query results regardless of ``batch_size`` and ``n_workers``.
    With ``faults``, loss keys are the workload indices — query ``i``
    drops the same messages on every execution path (the golden-parity
    contract; never key loss by worker or batch position).
    """
    sources, objects = draw_query_workload(
        graph, placement, n_queries, seed=seed, sources=sources
    )
    if n_workers == 0 or n_workers > 1:
        from repro.parallel import run_queries

        return run_queries(
            graph, placement, n_queries, ttl,
            sources=sources, objects=objects,
            n_workers=n_workers, batch_size=batch_size,
            faults=faults,
        ).results
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        from repro.search.batch import flood_batch, placement_masks

        results: list[FloodResult] = []
        for start in range(0, n_queries, batch_size):
            chunk = slice(start, start + batch_size)
            results.extend(
                flood_batch(
                    graph, sources[chunk], ttl,
                    replica_masks=placement_masks(placement, objects[chunk]),
                    faults=faults,
                    query_keys=np.arange(
                        start, min(start + batch_size, n_queries)
                    ),
                )
            )
        return results

    results = []
    for i, (src, obj) in enumerate(zip(sources, objects)):
        mask = placement.holder_mask(int(obj))
        results.append(
            flood(graph, int(src), ttl, replica_mask=mask, faults=faults,
                  query_key=i)
        )
    return results
