"""TTL selection policies for controlled flooding (paper Section 6).

"Chang and Liu [6] described a dynamic programming mechanism that selected
an appropriate TTL when the probability distribution of the object
locations was known in advance.  When the distribution was not known in
advance, they used a randomized mechanism ... This approach can be
integrated into a Makalu search that relies on TTL to control the spread of
queries."

This module implements that integration:

* :func:`optimal_ttl_sequence` — the known-distribution DP: given the
  distribution of first-hit hops and the per-TTL flood cost, compute the
  expected-cost-minimizing increasing sequence of retry TTLs;
* :func:`randomized_ttl` — the distribution-free randomized strategy
  (geometric TTL doubling with a random start), which is O(1)-competitive;
* :func:`run_ttl_sequence` — execute a retry sequence with flooding,
  accumulating messages across attempts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.search.flooding import flood
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class TtlPolicyResult:
    """Outcome of a retried controlled flood."""

    source: int
    attempts: tuple[int, ...]  # TTLs actually tried, in order
    messages: int
    success: bool


def optimal_ttl_sequence(
    hit_hop_pmf: np.ndarray,
    cost_per_ttl: np.ndarray,
) -> list[int]:
    """Expected-cost-optimal increasing TTL retry sequence (Chang-Liu DP).

    Parameters
    ----------
    hit_hop_pmf:
        ``pmf[h]`` = probability the nearest replica is exactly ``h`` hops
        from the source, for h = 0..H.  Mass may be sub-normalized; the
        remainder is "object not present within H hops" and every strategy
        pays the full ladder for it.
    cost_per_ttl:
        ``cost[t]`` = messages of one flood with TTL ``t`` (index 0..H,
        cost[0] = 0).

    Returns
    -------
    The optimal sequence of TTLs, strictly increasing and ending at H, that
    minimizes the expected total messages: each attempt with TTL ``t`` is
    paid whenever the object was not within the previous attempt's TTL.
    """
    pmf = np.asarray(hit_hop_pmf, dtype=np.float64)
    cost = np.asarray(cost_per_ttl, dtype=np.float64)
    if pmf.ndim != 1 or cost.shape != pmf.shape:
        raise ValueError("hit_hop_pmf and cost_per_ttl must be 1-D and aligned")
    if np.any(pmf < 0) or pmf.sum() > 1 + 1e-9:
        raise ValueError("hit_hop_pmf must be a (sub-)probability vector")
    if np.any(np.diff(cost) < 0):
        raise ValueError("cost_per_ttl must be non-decreasing in TTL")
    horizon = pmf.size - 1
    if horizon < 1:
        raise ValueError("need at least TTL 1 in the horizon")

    # tail[s] = P(first hit hop > s) = probability an attempt with TTL s fails.
    cdf = np.cumsum(pmf)
    tail = 1.0 - cdf

    # best[t] = min expected cost of a strategy whose attempts end exactly
    # at TTL t; attempt t is paid whenever the previous attempt s failed,
    # i.e. with probability tail[s].  s = 0 is the implicit free local
    # check at the source (cost[0] = 0, succeeds iff the hit hop is 0).
    best = np.full(horizon + 1, np.inf)
    choice = np.full(horizon + 1, -1, dtype=np.int64)
    best[0] = 0.0
    for t in range(1, horizon + 1):
        for s in range(t):
            expected = best[s] + cost[t] * tail[s]
            if expected < best[t] - 1e-12:
                best[t] = expected
                choice[t] = s
    sequence = []
    t = horizon
    while t > 0:
        sequence.append(t)
        t = int(choice[t])
    sequence.reverse()
    return sequence


def randomized_ttl(
    horizon: int, seed: SeedLike = None, base: int = 1
) -> list[int]:
    """Distribution-free randomized retry ladder (randomized doubling).

    Starts at a uniformly random rung of the doubling ladder and doubles up
    to the horizon — the classic competitive strategy Chang & Liu recommend
    when the object-location distribution is unknown.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if base < 1:
        raise ValueError(f"base must be >= 1, got {base}")
    rng = as_generator(seed)
    rungs = []
    t = base
    while t < horizon:
        rungs.append(t)
        t *= 2
    rungs.append(horizon)
    start = int(rng.integers(0, len(rungs)))
    return rungs[start:]


def run_ttl_sequence(
    graph: OverlayGraph,
    source: int,
    replica_mask: np.ndarray,
    sequence: Sequence[int],
) -> TtlPolicyResult:
    """Flood with each TTL of ``sequence`` until a replica is found.

    Messages accumulate across attempts (each retry re-floods from
    scratch, as in the expanding-ring model).
    """
    if not sequence:
        raise ValueError("sequence must contain at least one TTL")
    if list(sequence) != sorted(set(int(t) for t in sequence)):
        raise ValueError("sequence must be strictly increasing")
    attempts = []
    messages = 0
    for ttl in sequence:
        result = flood(graph, source, int(ttl), replica_mask=replica_mask)
        attempts.append(int(ttl))
        messages += result.total_messages
        if result.success:
            return TtlPolicyResult(
                source=source, attempts=tuple(attempts), messages=messages,
                success=True,
            )
    return TtlPolicyResult(
        source=source, attempts=tuple(attempts), messages=messages, success=False
    )
