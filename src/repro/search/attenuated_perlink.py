"""Per-link attenuated Bloom filters (exact Rhea-Kubiatowicz semantics).

The default :class:`~repro.search.attenuated.AttenuatedFilters` keeps one
filter hierarchy per *node* — what a peer learns from a plain neighbor
exchange.  The original attenuated-Bloom-filter design [Rhea & Kubiatowicz]
instead attaches a hierarchy to each *directed link*: the level-``i``
filter of link ``u -> v`` digests content exactly ``i`` hops from ``u``
through ``v``, never looking back through ``u`` itself.  That removes the
echo (a node's own content reappearing in its deeper levels) at the cost of
``degree``-times more filter state.

Recurrence::

    F_1[u -> v] = own(v)
    F_i[u -> v] = OR over w in Gamma(v) \\ {u} of F_{i-1}[v -> w]

The leave-one-out OR per node is computed with segment prefix/suffix ORs,
iterating over within-segment offsets (max-degree iterations, each a fully
vectorized pass), so construction is O(depth * max_degree * E) word ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.search.bloom import BloomParams, insert_keys, key_positions, make_filters
from repro.search.replication import Placement
from repro.topology.graph import OverlayGraph
from repro.util.segments import segment_counts


@dataclass(frozen=True)
class PerLinkAttenuatedFilters:
    """Attenuated filters attached to directed CSR entries.

    ``levels[i - 1]`` has one row per directed edge (CSR entry order);
    row ``j`` is the level-``i`` filter of the link ``src(j) -> dst(j)``.
    Levels are 1-based (level 1 = the neighbor's own digest); the
    :attr:`no_match` sentinel is ``depth + 1``.
    """

    params: BloomParams
    indptr: np.ndarray  # the owning graph's CSR offsets (for dispatch)
    levels: Tuple[np.ndarray, ...]

    @property
    def depth(self) -> int:
        """Number of levels (level ``depth`` reaches ``depth`` hops out)."""
        return len(self.levels)

    @property
    def no_match(self) -> int:
        """Sentinel meaning "no level of this link's filter matched"."""
        return self.depth + 1

    @property
    def n_links(self) -> int:
        """Directed edge count (2x undirected edges)."""
        return self.levels[0].shape[0]

    def matched_level_links(self, positions: np.ndarray, key: int) -> np.ndarray:
        """Shallowest matching level for each directed-edge position."""
        positions = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        words, masks = key_positions(np.asarray([key]), self.params)
        w, m = words[0], masks[0]
        out = np.full(positions.size, self.no_match, dtype=np.int64)
        for level in range(self.depth, 0, -1):
            probe = self.levels[level - 1][positions][:, w]
            hit = np.all((probe & m) == m, axis=1)
            out[hit] = level
        return out

    def neighbor_levels(
        self, graph: OverlayGraph, u: int, targets: np.ndarray, key: int
    ) -> np.ndarray:
        """Router hook: score ``u``'s links toward ``targets`` for ``key``."""
        nbrs = graph.neighbors(u)
        pos = graph.indptr[u] + np.searchsorted(nbrs, targets)
        return self.matched_level_links(pos, key)


def _reverse_entry_permutation(graph: OverlayGraph) -> np.ndarray:
    """``rev[j]`` = CSR position of the reversed edge of entry ``j``."""
    deg = segment_counts(graph.indptr)
    src = np.repeat(np.arange(graph.n_nodes, dtype=np.int64), deg)
    dst = graph.indices
    # Entries sorted by (dst, src) enumerate the reversed pairs in CSR
    # order, so the k-th of them *is* CSR entry k's reverse.
    perm = np.lexsort((src, dst))
    rev = np.empty(dst.size, dtype=np.int64)
    rev[perm] = np.arange(dst.size, dtype=np.int64)
    return rev


def _leave_one_out_or(rows: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment leave-one-out OR.

    ``out[j]`` = OR of all rows in ``j``'s segment except row ``j`` itself
    (zeros for singleton segments).  Computed from segment prefix and
    suffix ORs; the loop runs over within-segment offsets, i.e. max-degree
    iterations of fully vectorized work.
    """
    counts = np.diff(indptr)
    total = rows.shape[0]
    if total == 0:
        return rows.copy()
    local = np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], counts)
    max_deg = int(counts.max())

    prefix = np.zeros_like(rows)
    suffix = np.zeros_like(rows)
    for offset in range(1, max_deg):
        sel = np.flatnonzero(local == offset)
        if sel.size == 0:
            break
        prefix[sel] = prefix[sel - 1] | rows[sel - 1]
    # Suffix: mirror walk from each segment's end.
    rev_local = np.repeat(counts - 1, counts) - local
    for offset in range(1, max_deg):
        sel = np.flatnonzero(rev_local == offset)
        if sel.size == 0:
            break
        suffix[sel] = suffix[sel + 1] | rows[sel + 1]
    return prefix | suffix


def build_per_link_filters(
    graph: OverlayGraph,
    placement: Optional[Placement] = None,
    depth: int = 3,
    params: Optional[BloomParams] = None,
    node_store: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> PerLinkAttenuatedFilters:
    """Build depth-``depth`` per-link attenuated filters for an overlay.

    Memory scales with ``depth * directed_edges * n_bits`` — roughly
    ``mean_degree`` times the per-node variant — so consider a smaller
    ``BloomParams.n_bits`` for very large overlays.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if (placement is None) == (node_store is None):
        raise ValueError("provide exactly one of placement or node_store")
    params = params or BloomParams()

    if placement is not None:
        if placement.n_nodes != graph.n_nodes:
            raise ValueError("placement and graph node counts disagree")
        store_indptr, store_keys = placement.node_store()
    else:
        store_indptr, store_keys = node_store
        if store_indptr.shape != (graph.n_nodes + 1,):
            raise ValueError("node_store indptr must have n_nodes + 1 entries")

    own = make_filters(graph.n_nodes, params)
    owners = np.repeat(
        np.arange(graph.n_nodes, dtype=np.int64), np.diff(store_indptr)
    )
    insert_keys(own, owners, store_keys, params)

    rev = _reverse_entry_permutation(graph)
    indptr = graph.indptr

    # Level 1: F[u -> v] = own(v) = own[indices].
    levels = [own[graph.indices]]
    for _ in range(2, depth + 1):
        prev = levels[-1]
        # loo[k] (a position in v's slice, i.e. a link v -> w) = OR of v's
        # other outgoing links' previous-level filters.  The new level of
        # u -> v is that leave-one-out OR at v excluding v -> u, which is
        # exactly loo evaluated at the reverse entry.
        loo = _leave_one_out_or(prev, indptr)
        levels.append(loo[rev])
    return PerLinkAttenuatedFilters(
        params=params, indptr=indptr.copy(), levels=tuple(levels)
    )
