"""Search mechanisms over overlay graphs (paper Section 4).

* :mod:`repro.search.flooding` — TTL-limited duplicate-suppressed flooding;
* :mod:`repro.search.batch` — the vectorized multi-query flood kernel
  (bit-identical to scalar flooding; see also :mod:`repro.parallel`);
* :mod:`repro.search.twotier_flood` — Gnutella v0.6 query routing (dynamic
  querying + QRP leaf shielding);
* :mod:`repro.search.randomwalk` — k-walker and degree-biased baselines;
* :mod:`repro.search.attenuated` / :mod:`repro.search.identifier` —
  attenuated-Bloom-filter indexed identifier search;
* :mod:`repro.search.ttl_policy` — Chang-Liu TTL selection (extension);
* :mod:`repro.search.gossip` — flood + epidemic two-phase search (extension);
* :mod:`repro.search.replication` — uniform-random object placement;
* :mod:`repro.search.metrics` — per-query records and aggregation.
"""

from repro.search.attenuated import (
    AttenuatedFilters,
    aggregate_neighbors,
    build_attenuated_filters,
)
from repro.search.attenuated_perlink import (
    PerLinkAttenuatedFilters,
    build_per_link_filters,
)
from repro.search.bloom import (
    BloomParams,
    contains_key,
    fill_ratio,
    insert_keys,
    make_filters,
)
from repro.search.batch import flood_batch, placement_masks
from repro.search.flooding import (
    FloodResult,
    draw_query_workload,
    flood,
    flood_queries,
)
from repro.search.gia import GiaSearchResult, gia_search
from repro.search.gossip import GossipSearchResult, flood_then_gossip
from repro.search.identifier import (
    AbfRouter,
    IdentifierSearchResult,
    identifier_queries,
)
from repro.search.latency_flood import (
    ResponseTimeResult,
    flood_arrival_times,
    response_time_distribution,
    time_to_first_result,
)
from repro.search.metrics import (
    QueryRecord,
    SearchSummary,
    min_ttl_for_success,
    success_vs_ttl,
    summarize,
)
from repro.search.qrp import QrpTables, build_qrp_tables
from repro.search.randomwalk import WalkResult, random_walk_search
from repro.search.replication import (
    Placement,
    place_objects,
    place_single_object,
    replica_count,
    replication_factor,
)
from repro.search.ttl_policy import (
    TtlPolicyResult,
    optimal_ttl_sequence,
    randomized_ttl,
    run_ttl_sequence,
)
from repro.search.twotier_flood import (
    TwoTierFloodResult,
    TwoTierSearch,
    two_tier_queries,
)

__all__ = [
    "flood",
    "flood_batch",
    "flood_queries",
    "draw_query_workload",
    "placement_masks",
    "FloodResult",
    "TwoTierSearch",
    "TwoTierFloodResult",
    "two_tier_queries",
    "QrpTables",
    "build_qrp_tables",
    "random_walk_search",
    "WalkResult",
    "BloomParams",
    "make_filters",
    "insert_keys",
    "contains_key",
    "fill_ratio",
    "AttenuatedFilters",
    "build_attenuated_filters",
    "aggregate_neighbors",
    "PerLinkAttenuatedFilters",
    "build_per_link_filters",
    "AbfRouter",
    "IdentifierSearchResult",
    "identifier_queries",
    "TtlPolicyResult",
    "optimal_ttl_sequence",
    "randomized_ttl",
    "run_ttl_sequence",
    "GossipSearchResult",
    "flood_then_gossip",
    "GiaSearchResult",
    "gia_search",
    "flood_arrival_times",
    "time_to_first_result",
    "response_time_distribution",
    "ResponseTimeResult",
    "Placement",
    "place_objects",
    "place_single_object",
    "replica_count",
    "replication_factor",
    "QueryRecord",
    "SearchSummary",
    "summarize",
    "success_vs_ttl",
    "min_ttl_for_success",
]
