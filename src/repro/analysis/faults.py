"""Failure injection (paper Section 3.4).

The paper's worst-case failure model: "a non-recoverable and instantaneous
failure of the most highly connected nodes ... The analysis is performed on
a snapshot of the overlay immediately after the failure occurs so that the
remaining nodes are not given the opportunity to recover."  Random failures
are included for comparison.  The recovery path (survivors re-acquiring
neighbors) lives in :func:`repro.core.maintenance.repair_after_failure`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.analysis.spectral import (
    eigenvalue_multiplicity,
    normalized_laplacian_spectrum,
)
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_probability

FailureMode = Literal["top-degree", "random"]


def top_degree_nodes(graph: OverlayGraph, fraction: float) -> np.ndarray:
    """Ids of the ``fraction`` most highly connected nodes (ties by id)."""
    check_probability("fraction", fraction)
    k = int(round(fraction * graph.n_nodes))
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # argsort on (-degree, id): stable sort on ids then stable sort by -degree.
    order = np.argsort(-graph.degrees, kind="stable")
    return np.sort(order[:k])


def random_nodes(graph: OverlayGraph, fraction: float, seed: SeedLike = None) -> np.ndarray:
    """Ids of a uniform random ``fraction`` of nodes."""
    check_probability("fraction", fraction)
    k = int(round(fraction * graph.n_nodes))
    rng = as_generator(seed)
    return np.sort(rng.choice(graph.n_nodes, size=k, replace=False))


def fail_nodes(graph: OverlayGraph, nodes: Sequence[int]) -> OverlayGraph:
    """Snapshot of the overlay immediately after the given nodes vanish."""
    return graph.remove_nodes(nodes)[0]


@dataclass(frozen=True)
class FailureReport:
    """Connectivity snapshot after one failure level.

    ``multiplicity_zero`` is the number of connected components (including
    isolated survivors); ``multiplicity_one`` tracks the weakly connected
    "edge" nodes the paper watches in Figure 1.  ``spectrum`` is the full
    normalized-Laplacian spectrum when requested, else None.
    """

    fraction_failed: float
    n_survivors: int
    n_components: int
    giant_fraction: float
    multiplicity_zero: int
    multiplicity_one: int
    spectrum: np.ndarray | None


def failure_sweep(
    graph: OverlayGraph,
    fractions: Sequence[float],
    mode: FailureMode = "top-degree",
    seed: SeedLike = None,
    with_spectrum: bool = True,
    multiplicity_tol: float = 1e-6,
) -> list[FailureReport]:
    """Fail increasing fractions of nodes and report connectivity structure.

    Each level fails nodes of the *original* overlay (snapshot semantics);
    failures across levels are nested for ``top-degree`` mode and
    independent draws for ``random``.
    """
    rng = as_generator(seed)
    reports: list[FailureReport] = []
    for fraction in fractions:
        if mode == "top-degree":
            doomed = top_degree_nodes(graph, fraction)
        elif mode == "random":
            doomed = random_nodes(graph, fraction, seed=rng)
        else:
            raise ValueError(f"unknown failure mode {mode!r}")
        survivor_graph = fail_nodes(graph, doomed)
        n_comp, labels = survivor_graph.connected_components()
        giant = (
            float(np.bincount(labels).max() / survivor_graph.n_nodes)
            if survivor_graph.n_nodes
            else 0.0
        )
        spectrum = None
        m0 = n_comp
        m1 = -1
        if with_spectrum:
            spectrum = normalized_laplacian_spectrum(survivor_graph)
            m0 = eigenvalue_multiplicity(spectrum, 0.0, tol=multiplicity_tol)
            m1 = eigenvalue_multiplicity(spectrum, 1.0, tol=multiplicity_tol)
        reports.append(
            FailureReport(
                fraction_failed=float(fraction),
                n_survivors=survivor_graph.n_nodes,
                n_components=n_comp,
                giant_fraction=giant,
                multiplicity_zero=m0,
                multiplicity_one=m1,
                spectrum=spectrum,
            )
        )
    return reports
