"""Neighborhood expansion and the Convergence Boundary (Sections 2.1, 4.4).

Makalu maximizes the *node boundary* of each node's neighborhood; these
helpers measure the resulting global behaviour:

* :func:`ball_sizes` — how many nodes a BFS ball reaches per hop;
* :func:`expansion_profile` — the vertex-expansion ratio |∂S|/|S| of growing
  balls, the quantity expander graphs keep bounded below;
* :func:`convergence_boundary` — the hop at which a flood's disjoint paths
  start converging on already-visited nodes ("occurs when roughly half the
  nodes have been visited; it coincides with approximately half the
  diameter").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.analysis.bfs import bfs_frontier_sizes, bfs_hops
from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


def node_boundary_size(graph: OverlayGraph, nodes: Iterable[int]) -> int:
    """|∂S|: nodes adjacent to the set ``S`` but not in it."""
    nodes = np.unique(np.asarray(list(nodes), dtype=np.int64))
    if nodes.size == 0:
        return 0
    in_set = np.zeros(graph.n_nodes, dtype=bool)
    in_set[nodes] = True
    nbrs, _ = gather_neighbors(graph, nodes)
    outside = np.unique(nbrs[~in_set[nbrs]])
    return int(outside.size)


def ball_sizes(
    graph: OverlayGraph, source: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Cumulative nodes reached within h hops of ``source`` (h = 0, 1, ...)."""
    return np.cumsum(bfs_frontier_sizes(graph, source, max_hops=max_hops))


@dataclass(frozen=True)
class ExpansionProfile:
    """Per-hop vertex expansion around sampled sources.

    ``ratio[h]`` is the mean of |∂B_h| / |B_h| over the sources, where
    ``B_h`` is the h-hop ball; the ratio at small h is the "expansion from
    each node's neighborhood" that Makalu maximizes.
    """

    hops: np.ndarray
    ratio: np.ndarray
    ball_fraction: np.ndarray  # mean |B_h| / n

    def min_early_expansion(self, max_hop: int = 2) -> float:
        """Worst mean expansion over hops 1..max_hop (an expander stays high)."""
        mask = (self.hops >= 1) & (self.hops <= max_hop)
        if not mask.any():
            raise ValueError("profile does not cover the requested hops")
        return float(self.ratio[mask].min())


def expansion_profile(
    graph: OverlayGraph,
    n_sources: int = 16,
    max_hops: int = 6,
    seed: SeedLike = None,
) -> ExpansionProfile:
    """Measure |∂B_h|/|B_h| for BFS balls around random sources."""
    if n_sources < 1:
        raise ValueError("need at least one source")
    rng = as_generator(seed)
    sources = rng.choice(graph.n_nodes, size=min(n_sources, graph.n_nodes), replace=False)

    hops = np.arange(max_hops + 1)
    ratios = np.zeros((sources.size, max_hops + 1))
    fracs = np.zeros((sources.size, max_hops + 1))
    for i, s in enumerate(sources):
        dist = bfs_hops(graph, int(s), max_hops=max_hops + 1)
        for h in range(max_hops + 1):
            ball_size = int(np.count_nonzero((dist >= 0) & (dist <= h)))
            boundary = int(np.count_nonzero(dist == h + 1))
            ratios[i, h] = boundary / ball_size if ball_size else 0.0
            fracs[i, h] = ball_size / graph.n_nodes
    return ExpansionProfile(
        hops=hops, ratio=ratios.mean(axis=0), ball_fraction=fracs.mean(axis=0)
    )


def convergence_boundary(
    graph: OverlayGraph,
    n_sources: int = 16,
    seed: SeedLike = None,
    threshold: float = 0.5,
) -> float:
    """Mean hop count at which BFS balls first cover ``threshold`` of nodes.

    This is the paper's Convergence Boundary: beyond it, flood paths start
    colliding and duplicate messages surge.  Returned as a float (mean over
    sources); compare against half the graph diameter.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    rng = as_generator(seed)
    sources = rng.choice(graph.n_nodes, size=min(n_sources, graph.n_nodes), replace=False)
    boundary_hops = []
    target = threshold * graph.n_nodes
    for s in sources:
        cum = ball_sizes(graph, int(s))
        reached = np.flatnonzero(cum >= target)
        if reached.size == 0:
            # Ball never covers the threshold (disconnected graph): treat the
            # full depth as the boundary.
            boundary_hops.append(cum.size - 1)
        else:
            boundary_hops.append(int(reached[0]))
    return float(np.mean(boundary_hops))
