"""Spectral graph analysis (paper Section 3.3 and Figure 1).

Determining expansion exactly is co-NP-complete, so the paper follows
spectral graph theory: the second-smallest Laplacian eigenvalue λ₁ (the
*algebraic connectivity*, Fiedler value) bounds vertex connectivity from
below, and the *normalized* Laplacian spectrum — whose eigenvalues live in
[0, 2] regardless of graph size — lets overlays of different sizes be
compared as nodes fail.  Two multiplicities carry the paper's Figure 1
story: eigenvalue 0 counts connected components, and a growing multiplicity
of eigenvalue 1 signals weakly connected "edge" nodes.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.topology.graph import OverlayGraph

#: Default cap on dense full-spectrum computation (n^2 memory, n^3 time).
DENSE_SPECTRUM_LIMIT = 4000


def laplacian(graph: OverlayGraph, normalized: bool = False) -> sp.csr_matrix:
    """(Normalized) Laplacian matrix of the overlay.

    The combinatorial Laplacian is ``L = D - A``.  The normalized form is
    ``I - D^{-1/2} A D^{-1/2}`` with the Chung convention that isolated
    nodes contribute a zero row (hence an eigenvalue 0, counting them as
    their own connected component).
    """
    adj = graph.to_scipy(weighted=False)
    deg = graph.degrees.astype(np.float64)
    if not normalized:
        return (sp.diags(deg) - adj).tocsr()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(deg)
    inv_sqrt[deg == 0] = 0.0
    d_half = sp.diags(inv_sqrt)
    ident = sp.diags((deg > 0).astype(np.float64))
    return (ident - d_half @ adj @ d_half).tocsr()


def algebraic_connectivity(graph: OverlayGraph) -> float:
    """λ₁, the second-smallest eigenvalue of the combinatorial Laplacian.

    Bounds the paper uses: ``λ₁(G) <= v(G) <= d_min(G)`` — high algebraic
    connectivity certifies high vertex connectivity and hence expansion.
    Computed with LOBPCG with the known null vector (all-ones, for a
    connected graph) deflated as a constraint, which converges in a handful
    of iterations on expander-like graphs; dense solve for tiny graphs.
    """
    n = graph.n_nodes
    if n < 2:
        raise ValueError("algebraic connectivity needs at least two nodes")
    lap = laplacian(graph)
    if n <= 512:
        eigs = np.linalg.eigvalsh(lap.toarray())
        return float(np.sort(eigs)[1])
    rng = np.random.default_rng(0xF1ED1E4)  # fixed: determinism of the estimate
    x0 = rng.standard_normal((n, 1))
    ones = np.ones((n, 1)) / np.sqrt(n)
    with warnings.catch_warnings():
        # Near-zero Fiedler values (barely connected graphs) converge in
        # absolute terms long before LOBPCG's relative tolerance is met.
        warnings.filterwarnings("ignore", message="Exited at iteration")
        warnings.filterwarnings("ignore", message="Exited postprocessing")
        vals, _ = spla.lobpcg(
            lap.tocsr(), x0, Y=ones, largest=False, tol=1e-7, maxiter=2000
        )
    return float(vals[0])


def normalized_laplacian_spectrum(
    graph: OverlayGraph, limit: int = DENSE_SPECTRUM_LIMIT
) -> np.ndarray:
    """Full eigenvalue spectrum of the normalized Laplacian, ascending.

    Dense O(n^3): refuse beyond ``limit`` nodes (Figure 1 runs at
    figure-scale overlays; raise ``limit`` explicitly to override).
    """
    if graph.n_nodes > limit:
        raise ValueError(
            f"full spectrum of a {graph.n_nodes}-node graph is O(n^3) dense "
            f"work; pass limit= explicitly to force it"
        )
    lap = laplacian(graph, normalized=True).toarray()
    # Symmetrize against floating-point asymmetry from the sparse products.
    lap = 0.5 * (lap + lap.T)
    return np.linalg.eigvalsh(lap)


def spectrum_points(eigenvalues: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Figure-1 plotting transform: (normalized rank, eigenvalue) pairs.

    ``x_i = rank_i / (n - 1)`` maps any graph size onto [0, 1] so spectra of
    differently sized (post-failure) overlays overlay on one plot.
    """
    eigs = np.sort(np.asarray(eigenvalues, dtype=np.float64))
    n = eigs.size
    if n == 0:
        raise ValueError("empty spectrum")
    x = np.arange(n, dtype=np.float64) / max(n - 1, 1)
    return x, eigs


def eigenvalue_multiplicity(
    eigenvalues: np.ndarray, value: float, tol: float = 1e-8
) -> int:
    """Number of eigenvalues within ``tol`` of ``value``.

    ``value=0`` counts connected components of the normalized Laplacian;
    ``value=1`` tracks the paper's weakly connected "edge" nodes.
    """
    eigs = np.asarray(eigenvalues, dtype=np.float64)
    return int(np.count_nonzero(np.abs(eigs - value) <= tol))


def spectral_gap(graph: OverlayGraph) -> float:
    """Normalized-Laplacian spectral gap λ₁ (dense; small graphs only).

    For expanders this gap is bounded away from zero; it complements
    :func:`algebraic_connectivity` when comparing different-size graphs.
    """
    spectrum = normalized_laplacian_spectrum(graph)
    if spectrum.size < 2:
        raise ValueError("spectral gap needs at least two nodes")
    return float(spectrum[1])
