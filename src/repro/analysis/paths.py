"""Graph diameter and characteristic paths (paper Section 3.2).

The paper evaluates overlays by All-Pairs Shortest Paths, "keeping track of
cost both in terms of hops and physical network latency", and notes the step
"is computationally intensive and does not scale well ... for this reason,
we limited the network size to 10,000".  We keep that spirit: exact APSP via
scipy's C Dijkstra/BFS when feasible, with optional source sampling for
larger overlays (estimates are flagged in the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.topology.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PathStats:
    """Shortest-path summary of an overlay.

    ``characteristic_*`` are means over all (sampled) connected pairs;
    ``diameter_hops`` is the maximum hop eccentricity observed and
    ``diameter_cost`` the maximum latency-weighted distance.
    """

    characteristic_hops: float
    characteristic_cost: float
    diameter_hops: int
    diameter_cost: float
    n_sources: int
    exact: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "exact" if self.exact else f"sampled({self.n_sources} sources)"
        return (
            f"PathStats[{kind}]: mean hops {self.characteristic_hops:.3f}, "
            f"mean cost {self.characteristic_cost:.3f}, diameter "
            f"{self.diameter_hops} hops / {self.diameter_cost:.3f} cost"
        )


def path_stats(
    graph: OverlayGraph,
    n_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> PathStats:
    """Hop and latency path statistics (APSP or sampled-source SSSP).

    Parameters
    ----------
    n_sources:
        ``None`` computes exact APSP from every node.  An integer samples
        that many sources uniformly, which estimates characteristic paths
        well and lower-bounds the diameter.

    Raises
    ------
    ValueError
        If the graph is disconnected — characteristic paths are undefined
        across components; analyze ``graph.giant_component()[0]`` instead.
    """
    n = graph.n_nodes
    if n < 2:
        raise ValueError("path statistics need at least two nodes")
    if n_sources is not None and not 1 <= n_sources <= n:
        raise ValueError(f"n_sources must be in [1, {n}], got {n_sources}")

    exact = n_sources is None or n_sources >= n
    if exact:
        sources = np.arange(n, dtype=np.int64)
    else:
        rng = as_generator(seed)
        sources = rng.choice(n, size=n_sources, replace=False)

    unweighted = graph.to_scipy(weighted=False)
    weighted = graph.to_scipy(weighted=True)

    hop_dist = csgraph.shortest_path(
        unweighted, method="D", directed=False, unweighted=True, indices=sources
    )
    if np.isinf(hop_dist).any():
        raise ValueError(
            "graph is disconnected; take the giant component before computing "
            "path statistics"
        )
    cost_dist = csgraph.dijkstra(weighted, directed=False, indices=sources)

    # Exclude the zero self-distances from the means.
    pairs = hop_dist.size - sources.size
    mean_hops = float(hop_dist.sum() / pairs)
    mean_cost = float(cost_dist.sum() / pairs)
    return PathStats(
        characteristic_hops=mean_hops,
        characteristic_cost=mean_cost,
        diameter_hops=int(hop_dist.max()),
        diameter_cost=float(cost_dist.max()),
        n_sources=int(sources.size),
        exact=bool(exact),
    )
