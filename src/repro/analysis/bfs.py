"""Frontier-vectorized breadth-first search over CSR overlays."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.csr import gather_neighbors
from repro.topology.graph import OverlayGraph
from repro.util.validation import check_node_id


def bfs_hops(
    graph: OverlayGraph, source: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Hop distance from ``source`` to every node (-1 if unreached).

    ``max_hops`` truncates the search; nodes farther than that stay -1.
    """
    check_node_id("source", source, graph.n_nodes)
    hops = np.full(graph.n_nodes, -1, dtype=np.int64)
    hops[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    limit = max_hops if max_hops is not None else graph.n_nodes
    while frontier.size and depth < limit:
        depth += 1
        nbrs, _ = gather_neighbors(graph, frontier)
        fresh = nbrs[hops[nbrs] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        hops[frontier] = depth
    return hops


def bfs_frontier_sizes(
    graph: OverlayGraph, source: int, max_hops: Optional[int] = None
) -> np.ndarray:
    """Number of nodes first reached at each hop (index 0 = the source)."""
    hops = bfs_hops(graph, source, max_hops=max_hops)
    reached = hops[hops >= 0]
    return np.bincount(reached)
