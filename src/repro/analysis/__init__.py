"""Topology analysis toolkit (paper Section 3).

* :mod:`repro.analysis.paths` — graph diameter, characteristic path length
  and cost (Section 3.2);
* :mod:`repro.analysis.spectral` — Laplacian spectra and algebraic
  connectivity (Section 3.3, Figure 1);
* :mod:`repro.analysis.expansion` — neighborhood growth, vertex-expansion
  estimates and the Convergence Boundary (Sections 2, 4.4);
* :mod:`repro.analysis.faults` — targeted and random failure injection
  (Section 3.4).
"""

from repro.analysis.bfs import bfs_frontier_sizes, bfs_hops
from repro.analysis.degree import (
    PowerlawFit,
    degree_ccdf,
    degree_histogram,
    fit_powerlaw_exponent,
    powerlaw_fit_quality,
)
from repro.analysis.expansion import (
    ball_sizes,
    convergence_boundary,
    expansion_profile,
    node_boundary_size,
)
from repro.analysis.faults import (
    FailureReport,
    fail_nodes,
    failure_sweep,
    random_nodes,
    top_degree_nodes,
)
from repro.analysis.paths import PathStats, path_stats
from repro.analysis.spectral import (
    algebraic_connectivity,
    eigenvalue_multiplicity,
    laplacian,
    normalized_laplacian_spectrum,
    spectrum_points,
)

__all__ = [
    "bfs_hops",
    "bfs_frontier_sizes",
    "degree_histogram",
    "degree_ccdf",
    "fit_powerlaw_exponent",
    "powerlaw_fit_quality",
    "PowerlawFit",
    "PathStats",
    "path_stats",
    "laplacian",
    "algebraic_connectivity",
    "normalized_laplacian_spectrum",
    "spectrum_points",
    "eigenvalue_multiplicity",
    "ball_sizes",
    "node_boundary_size",
    "expansion_profile",
    "convergence_boundary",
    "FailureReport",
    "top_degree_nodes",
    "random_nodes",
    "fail_nodes",
    "failure_sweep",
]
