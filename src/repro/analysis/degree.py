"""Degree-distribution analysis.

The measurement studies the paper builds on characterize overlays by their
degree distributions: Gnutella v0.4 "overlay topologies have power law
degree distributions" [Saroiu; Ripeanu] with exponent ~2.3, while "the
modern Gnutella two-tier ultra-peer architecture does not follow a true
power law distribution since ultrapeers try to maintain a fixed number of
connections" [Stutzbach].  These helpers quantify both claims for any
generated or measured overlay:

* :func:`degree_histogram` / :func:`degree_ccdf` — distribution summaries;
* :func:`fit_powerlaw_exponent` — the discrete maximum-likelihood exponent
  estimate (Clauset-Shalizi-Newman form);
* :func:`powerlaw_fit_quality` — a Kolmogorov-Smirnov distance between the
  empirical tail and the fitted power law, to *reject* power-law shape for
  overlays (like Makalu or the v0.6 ultrapeer mesh) that concentrate
  around a target degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import OverlayGraph


def degree_histogram(graph: OverlayGraph) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    return np.bincount(graph.degrees)


def degree_ccdf(graph: OverlayGraph) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of the degree distribution.

    Returns ``(degrees, fraction_with_degree_ge)`` — the standard log-log
    plot for eyeballing power laws.
    """
    degs = np.sort(graph.degrees)
    unique, counts = np.unique(degs, return_counts=True)
    tail = np.cumsum(counts[::-1])[::-1] / degs.size
    return unique, tail


@dataclass(frozen=True)
class PowerlawFit:
    """A fitted discrete power law ``P(d) ~ d^-alpha`` for ``d >= d_min``."""

    alpha: float
    d_min: int
    n_tail: int  # nodes in the fitted tail
    n_distinct: int  # distinct degree values in the tail
    ks_distance: float

    @property
    def plausibly_powerlaw(self) -> bool:
        """Rule-of-thumb acceptance: small KS distance on a *diverse* tail.

        The diversity requirement rejects degenerate point masses (a
        k-regular graph "fits" any distribution evaluated only at one
        support point); power-law tails span many degree values.
        """
        return (
            self.n_tail >= 25
            and self.n_distinct >= 10
            and self.ks_distance < 0.1
        )


def fit_powerlaw_exponent(degrees: np.ndarray, d_min: int = 1) -> float:
    """Exact discrete MLE for the power-law exponent.

    Maximizes the Hurwitz-zeta likelihood ``-n ln zeta(alpha, d_min)
    - alpha sum(ln d)`` over ``d >= d_min`` (Clauset-Shalizi-Newman); the
    closed-form CSN approximation is badly biased at ``d_min = 1``, which
    is exactly where Gnutella degree tails start.
    """
    from scipy.optimize import minimize_scalar
    from scipy.special import zeta

    degrees = np.asarray(degrees)
    if d_min < 1:
        raise ValueError(f"d_min must be >= 1, got {d_min}")
    tail = degrees[degrees >= d_min]
    if tail.size == 0:
        raise ValueError(f"no degrees >= d_min={d_min}")
    mean_log = float(np.mean(np.log(tail)))

    def nll(alpha: float) -> float:
        return np.log(zeta(alpha, d_min)) + alpha * mean_log

    result = minimize_scalar(nll, bounds=(1.05, 8.0), method="bounded")
    return float(result.x)


def powerlaw_fit_quality(degrees: np.ndarray, d_min: int = 2) -> PowerlawFit:
    """Fit a power law to the degree tail and score it with a KS distance.

    A small distance means the tail is power-law-shaped (Gnutella v0.4);
    a large one rejects the shape (Makalu, k-regular, v0.6 ultrapeers).
    """
    degrees = np.asarray(degrees)
    tail = np.sort(degrees[degrees >= d_min])
    if tail.size == 0:
        raise ValueError(f"no degrees >= d_min={d_min}")
    alpha = fit_powerlaw_exponent(tail, d_min=d_min)

    # Empirical CCDF of the tail vs the fitted discrete power law's CCDF
    # (computed by normalized zeta-style partial sums over the support).
    support = np.arange(d_min, tail.max() + 1, dtype=np.float64)
    pmf = support**-alpha
    pmf /= pmf.sum()
    model_cdf = np.cumsum(pmf)
    unique, counts = np.unique(tail, return_counts=True)
    emp_cdf = np.cumsum(counts) / tail.size
    model_at = model_cdf[(unique - d_min).astype(np.int64)]
    ks = float(np.max(np.abs(emp_cdf - model_at)))
    return PowerlawFit(alpha=alpha, d_min=d_min, n_tail=int(tail.size),
                       n_distinct=int(unique.size), ks_distance=ks)
